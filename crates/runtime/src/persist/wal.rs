//! The on-disk write-ahead log: one `shard-N.wal` file per shard,
//! length-prefixed CRC-checksummed records appended through the
//! journal-first path.
//!
//! ```text
//! header   "SDWAL001" | gen u64 | shard u64            (24 bytes)
//! record   len u32 | crc32(payload) u32 | payload      (repeated)
//! payload  0x00 | count u32 | (stream u32, value f64)×count   batch
//!          0x01 | emitted u64                                 ack
//! ```
//!
//! All integers little-endian. A *batch* record is written before the
//! batch is applied (write-ahead); an *ack* record is written after the
//! batch's events were handed to the collector and carries the shard's
//! cumulative delivered-event count — recovery replays batches and
//! suppresses the first `last_ack − emitted_at_snapshot` regenerated
//! events, which were already delivered before the crash.
//!
//! [`scan_wal`] distinguishes a *torn tail* (a partial or
//! checksum-failing record at the end of the log — the expected residue
//! of a crash mid-write, recovered by truncating to the last valid
//! record) from *mid-log corruption* (a damaged record with checksummed
//! complete records after it), which is reported as a typed
//! [`RecoveryError::CorruptRecord`] — silently dropping records that
//! verify would turn disk rot into data loss.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use stardust_core::stream::StreamId;

use super::crc32::crc32;
use super::RecoveryError;

/// Magic bytes opening every WAL file (version in the trailing digits).
pub(crate) const WAL_MAGIC: &[u8; 8] = b"SDWAL001";
/// Fixed header length: magic + generation + shard id + header CRC.
/// The CRC covers the generation and shard fields — a bit flip there
/// would otherwise silently re-chain the segment onto the wrong
/// snapshot.
pub(crate) const WAL_HEADER_LEN: u64 = 28;
/// Upper bound on a record payload accepted by the scanner. Real
/// payloads are bounded by the batch size; anything past this is
/// treated as frame garbage rather than allocated.
const MAX_PAYLOAD: u32 = 1 << 30;

const TAG_BATCH: u8 = 0x00;
const TAG_ACK: u8 = 0x01;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A journaled batch, in shard-local stream ids.
    Batch(Vec<(StreamId, f64)>),
    /// Cumulative events delivered to the collector as of this point.
    Ack(u64),
}

/// Encodes a batch payload (tag + count + items) into `buf`.
pub(crate) fn encode_batch_into(buf: &mut Vec<u8>, items: &[(StreamId, f64)]) {
    buf.reserve(5 + items.len() * 12);
    buf.push(TAG_BATCH);
    buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for &(stream, value) in items {
        buf.extend_from_slice(&stream.to_le_bytes());
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
}

/// Encodes a batch payload (tag + count + items). Production framing
/// goes through [`frame_record_into`]; this allocation-per-payload
/// variant remains for tests that build WALs record by record.
#[cfg(test)]
pub(crate) fn encode_batch(items: &[(StreamId, f64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + items.len() * 12);
    encode_batch_into(&mut buf, items);
    buf
}

/// Encodes an ack payload (tag + cumulative emitted count).
pub(crate) fn encode_ack(emitted: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9);
    buf.push(TAG_ACK);
    buf.extend_from_slice(&emitted.to_le_bytes());
    buf
}

/// Decodes a payload whose checksum already verified. `None` means the
/// bytes checksum but do not parse — a foreign or future record shape.
fn decode_payload(payload: &[u8]) -> Option<WalEntry> {
    let (&tag, rest) = payload.split_first()?;
    match tag {
        TAG_BATCH => {
            let (count, mut rest) =
                (u32::from_le_bytes(rest.get(..4)?.try_into().ok()?), &rest[4..]);
            if rest.len() != count as usize * 12 {
                return None;
            }
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let stream = u32::from_le_bytes(rest[..4].try_into().ok()?);
                let value = f64::from_bits(u64::from_le_bytes(rest[4..12].try_into().ok()?));
                items.push((stream, value));
                rest = &rest[12..];
            }
            Some(WalEntry::Batch(items))
        }
        TAG_ACK if rest.len() == 8 => {
            Some(WalEntry::Ack(u64::from_le_bytes(rest.try_into().ok()?)))
        }
        _ => None,
    }
}

/// Frames a payload as `len | crc | payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Appends one framed record to `buf`, with the payload produced in
/// place by `encode` — no intermediate payload allocation. The 8-byte
/// frame head is reserved up front and backpatched with the payload's
/// length and checksum once it is encoded.
pub(crate) fn frame_record_into(buf: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    let head = buf.len();
    buf.extend_from_slice(&[0u8; 8]);
    encode(buf);
    let payload_len = (buf.len() - head - 8) as u32;
    let crc = crc32(&buf[head + 8..]);
    buf[head..head + 4].copy_from_slice(&payload_len.to_le_bytes());
    buf[head + 4..head + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Append handle over one shard's live WAL file. Writes go straight to
/// the file descriptor (no userspace buffering), so a record survives
/// process death the moment `append` returns; `sync` is only needed to
/// survive machine/power loss, which is what [`super::SyncPolicy`]
/// paces.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    /// Valid bytes written so far (header + complete records).
    pub bytes: u64,
}

impl WalWriter {
    /// Creates (truncating) a fresh WAL with its header. The caller
    /// decides whether to fsync.
    pub fn create(path: &Path, gen: u64, shard: u64) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&gen.to_le_bytes());
        header.extend_from_slice(&shard.to_le_bytes());
        let crc = crc32(&header[8..24]);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        Ok(WalWriter { file, bytes: WAL_HEADER_LEN })
    }

    /// Reopens an existing segment for appending at `len` bytes — its
    /// valid length after any torn-tail truncation. Used when the
    /// open-time rotation is aborted and the shard resumes its current
    /// segment instead.
    pub fn open_append(path: &Path, len: u64) -> io::Result<Self> {
        let file = File::options().append(true).open(path)?;
        Ok(WalWriter { file, bytes: len })
    }

    /// The underlying file handle, for fsync through the fault plan.
    pub fn file(&self) -> &File {
        &self.file
    }

    /// Appends one framed record. `tear_at` (an absolute file offset
    /// inside this record's frame, injected by the disk fault plan)
    /// stops the write mid-frame and reports an error — simulating the
    /// torn tail a power cut mid-write leaves behind.
    pub fn append(&mut self, payload: &[u8], tear_at: Option<u64>) -> io::Result<u64> {
        let framed = frame(payload);
        if let Some(at) = tear_at {
            let keep = at.saturating_sub(self.bytes).min(framed.len() as u64) as usize;
            self.file.write_all(&framed[..keep])?;
            return Err(io::Error::other(format!(
                "injected torn write at byte {at} ({keep} of {} frame bytes hit disk)",
                framed.len()
            )));
        }
        self.file.write_all(&framed)?;
        self.bytes += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Appends a pre-framed run of records (built with
    /// [`frame_record_into`]) as one `write(2)` — the group-commit
    /// coalesced write. Tear semantics match [`Self::append`]: `tear_at`
    /// is an absolute file offset anywhere inside the coalesced span;
    /// the bytes before it hit disk (a clean prefix of complete records
    /// plus at most one partial frame), the write errors, and `bytes`
    /// does not advance.
    pub fn append_coalesced(&mut self, framed: &[u8], tear_at: Option<u64>) -> io::Result<u64> {
        if let Some(at) = tear_at {
            let keep = at.saturating_sub(self.bytes).min(framed.len() as u64) as usize;
            self.file.write_all(&framed[..keep])?;
            return Err(io::Error::other(format!(
                "injected torn write at byte {at} ({keep} of {} group bytes hit disk)",
                framed.len()
            )));
        }
        self.file.write_all(framed)?;
        self.bytes += framed.len() as u64;
        Ok(framed.len() as u64)
    }
}

/// What a scan found on disk.
#[derive(Debug)]
pub(crate) enum WalFile {
    /// No file at the path.
    Missing,
    /// The file is shorter than a header — the crash interrupted its
    /// creation. Nothing was ever logged to it.
    TornHeader {
        /// Bytes of partial header on disk.
        torn_bytes: u64,
    },
    /// A readable log (possibly with a truncatable torn tail).
    Valid(WalScan),
}

/// The decoded contents of one WAL segment.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Generation stamped in the header (ties the segment to the
    /// snapshot it extends).
    pub gen: u64,
    /// Shard id stamped in the header.
    pub shard: u64,
    /// Journaled appends in log order, flattened across batch records.
    pub items: Vec<(StreamId, f64)>,
    /// Highest cumulative delivered-event count acked in the segment.
    pub last_ack: Option<u64>,
    /// Offset one past the last valid record.
    pub valid_len: u64,
    /// Bytes of torn tail beyond `valid_len` (zero for a clean log).
    pub torn_bytes: u64,
}

/// Is there a complete, checksummed, decodable record at `pos`?
fn record_at(buf: &[u8], pos: usize) -> bool {
    let Some(head) = buf.get(pos..pos + 8) else { return false };
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD as usize {
        return false;
    }
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    let Some(payload) = buf.get(pos + 8..pos + 8 + len) else { return false };
    crc32(payload) == crc && decode_payload(payload).is_some()
}

/// Reads and validates one WAL segment.
///
/// A partial or checksum-failing record at the tail is reported as
/// `torn_bytes` for the caller to truncate; the same damage followed by
/// at least one complete valid record is mid-log corruption and fails
/// with [`RecoveryError::CorruptRecord`]. Never panics on any byte
/// sequence.
pub(crate) fn scan_wal(path: &Path) -> Result<WalFile, RecoveryError> {
    let mut buf = Vec::new();
    match File::open(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalFile::Missing),
        Err(e) => return Err(RecoveryError::io(path, e)),
        Ok(mut f) => {
            f.read_to_end(&mut buf).map_err(|e| RecoveryError::io(path, e))?;
        }
    }
    if (buf.len() as u64) < WAL_HEADER_LEN {
        return Ok(WalFile::TornHeader { torn_bytes: buf.len() as u64 });
    }
    if &buf[..8] != WAL_MAGIC {
        return Err(RecoveryError::bad_header(path, "WAL magic mismatch"));
    }
    let header_crc = u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes"));
    if crc32(&buf[8..24]) != header_crc {
        return Err(RecoveryError::bad_header(path, "WAL header checksum mismatch"));
    }
    let gen = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let shard = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));

    let mut scan = WalScan {
        gen,
        shard,
        items: Vec::new(),
        last_ack: None,
        valid_len: WAL_HEADER_LEN,
        torn_bytes: 0,
    };
    let mut pos = WAL_HEADER_LEN as usize;
    while pos < buf.len() {
        if record_at(&buf, pos) {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            match decode_payload(&buf[pos + 8..pos + 8 + len]).expect("validated by record_at") {
                WalEntry::Batch(items) => scan.items.extend_from_slice(&items),
                WalEntry::Ack(emitted) => {
                    scan.last_ack = Some(scan.last_ack.map_or(emitted, |a| a.max(emitted)));
                }
            }
            pos += 8 + len;
            scan.valid_len = pos as u64;
            continue;
        }
        // Damage at `pos`. If any complete valid record exists beyond it
        // the log lost its middle, which truncation cannot repair; a
        // resync scan at every byte offset finds such a record if one
        // exists (a false positive needs a 32-bit checksum collision).
        if (pos + 1..buf.len().saturating_sub(8)).any(|cand| record_at(&buf, cand)) {
            return Err(RecoveryError::CorruptRecord {
                path: path.to_path_buf(),
                offset: pos as u64,
            });
        }
        scan.torn_bytes = (buf.len() - pos) as u64;
        break;
    }
    Ok(WalFile::Valid(scan))
}

/// Physically truncates a torn tail off a WAL segment, leaving exactly
/// the records a rescan validates.
pub(crate) fn truncate_to(path: &Path, valid_len: u64) -> Result<(), RecoveryError> {
    let file = File::options().write(true).open(path).map_err(|e| RecoveryError::io(path, e))?;
    file.set_len(valid_len).map_err(|e| RecoveryError::io(path, e))?;
    file.sync_all().map_err(|e| RecoveryError::io(path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_items(n: usize) -> Vec<(StreamId, f64)> {
        (0..n).map(|i| (i as StreamId % 7, i as f64 * 0.5 - 3.0)).collect()
    }

    fn write_sample(path: &Path) -> WalWriter {
        let mut w = WalWriter::create(path, 3, 1).unwrap();
        w.append(&encode_batch(&sample_items(4)), None).unwrap();
        w.append(&encode_ack(2), None).unwrap();
        w.append(&encode_batch(&sample_items(5)), None).unwrap();
        w.append(&encode_ack(6), None).unwrap();
        w
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join(format!("sdwal-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-1.wal");
        let w = write_sample(&path);
        let WalFile::Valid(scan) = scan_wal(&path).unwrap() else { panic!("valid") };
        assert_eq!((scan.gen, scan.shard), (3, 1));
        assert_eq!(scan.items.len(), 9);
        assert_eq!(scan.last_ack, Some(6));
        assert_eq!(scan.valid_len, w.bytes);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sdwal-tt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        let w = write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let WalFile::Valid(scan) = scan_wal(&path).unwrap() else { panic!("valid") };
        assert_eq!(scan.items.len(), 9, "complete records all survive");
        assert!(scan.torn_bytes > 0);
        assert!(scan.valid_len < w.bytes);
        truncate_to(&path, scan.valid_len).unwrap();
        let WalFile::Valid(rescan) = scan_wal(&path).unwrap() else { panic!("valid") };
        assert_eq!(rescan.torn_bytes, 0);
        assert_eq!(rescan.last_ack, Some(2), "the torn ack is gone");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("sdwal-mid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the FIRST record's payload: complete valid
        // records follow, so truncation would silently drop them.
        let at = WAL_HEADER_LEN as usize + 10;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match scan_wal(&path) {
            Err(RecoveryError::CorruptRecord { offset, .. }) => {
                assert_eq!(offset, WAL_HEADER_LEN);
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_tear_leaves_a_recoverable_prefix() {
        let dir = std::env::temp_dir().join(format!("sdwal-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        let mut w = WalWriter::create(&path, 0, 0).unwrap();
        w.append(&encode_batch(&sample_items(3)), None).unwrap();
        let tear = w.bytes + 5;
        let err = w.append(&encode_batch(&sample_items(8)), Some(tear)).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let WalFile::Valid(scan) = scan_wal(&path).unwrap() else { panic!("valid") };
        assert_eq!(scan.items.len(), 3, "only the pre-tear record survives");
        assert_eq!(scan.torn_bytes, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesced_group_is_byte_identical_to_sequential_appends() {
        let dir = std::env::temp_dir().join(format!("sdwal-grp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let seq = dir.join("seq.wal");
        let grp = dir.join("grp.wal");
        let batches = [sample_items(4), sample_items(1), sample_items(9)];
        let mut w = WalWriter::create(&seq, 2, 0).unwrap();
        for b in &batches {
            w.append(&encode_batch(b), None).unwrap();
        }
        let mut w = WalWriter::create(&grp, 2, 0).unwrap();
        let mut buf = Vec::new();
        for b in &batches {
            frame_record_into(&mut buf, |out| encode_batch_into(out, b));
        }
        w.append_coalesced(&buf, None).unwrap();
        assert_eq!(
            std::fs::read(&seq).unwrap(),
            std::fs::read(&grp).unwrap(),
            "group commit must not change the on-disk format"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_group_write_leaves_a_recoverable_record_prefix() {
        let dir = std::env::temp_dir().join(format!("sdwal-grptear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        let mut w = WalWriter::create(&path, 0, 0).unwrap();
        let mut buf = Vec::new();
        let first = sample_items(3);
        frame_record_into(&mut buf, |out| encode_batch_into(out, &first));
        let first_len = buf.len() as u64;
        let second = sample_items(5);
        frame_record_into(&mut buf, |out| encode_batch_into(out, &second));
        // Tear inside the second record of the group: the first record
        // is a complete prefix, the second is a torn tail.
        let tear = w.bytes + first_len + 6;
        let err = w.append_coalesced(&buf, Some(tear)).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let WalFile::Valid(scan) = scan_wal(&path).unwrap() else { panic!("valid") };
        assert_eq!(scan.items, first, "exactly the pre-tear records survive");
        assert_eq!(scan.torn_bytes, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_file_is_a_torn_header() {
        let dir = std::env::temp_dir().join(format!("sdwal-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.wal");
        std::fs::write(&path, b"SDWAL0").unwrap();
        assert!(matches!(scan_wal(&path).unwrap(), WalFile::TornHeader { torn_bytes: 6 }));
        assert!(matches!(scan_wal(&dir.join("absent.wal")).unwrap(), WalFile::Missing));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
