//! Durable on-disk persistence for the sharded runtime.
//!
//! Layout of a persistence directory for `S` shards:
//!
//! ```text
//! shard-N.wal        live write-ahead log, generation g
//! shard-N.wal.prev   the WAL segment between snapshots g−1 and g
//! shard-N.snap       snapshot generation g (atomic: tmp + rename)
//! shard-N.snap.prev  snapshot generation g−1 (corruption fallback)
//! shard-N.snap.tmp   in-flight snapshot; adopted or deleted on open
//! ```
//!
//! The invariant after every completed snapshot rotation: `shard-N.snap`
//! at generation `g` plus the records of `shard-N.wal` (generation `g`)
//! reproduce the shard's monitor exactly; if `shard-N.snap` is damaged,
//! `shard-N.snap.prev` plus `shard-N.wal.prev` plus `shard-N.wal`
//! reproduce the same state. Rotation keeps at least one intact
//! generation durable through every crash window: the new snapshot is
//! written to a temp file and fsynced *before* any rename, nothing is
//! deleted until the new generation is in place, and the old WAL
//! segment is retained as `.prev` rather than deleted — WAL
//! "truncation" is segment rotation.
//!
//! A snapshot rotation whose fsync fails is aborted: the shard keeps
//! appending to its current WAL segment, which remains self-consistent
//! with the on-disk snapshot chain (the chain only advances after the
//! new generation is durable).
//!
//! Residual exposure, by design: losing an *entire* `.wal.prev` file at
//! rest while `shard-N.snap` is simultaneously corrupt is
//! indistinguishable from the (legal, common) empty inter-generation
//! segment, so that double fault falls back without the missing
//! records. Every single-fault state either recovers exactly or fails
//! with a typed [`RecoveryError`].

pub(crate) mod crc32;
mod snapfile;
mod wal;

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use stardust_core::stream::StreamId;

use crate::fault::{DiskFaultKind, DiskFile, FaultPlan};
use crate::telemetry::RuntimeTelemetry;

use wal::{scan_wal, WalFile, WalWriter};

/// When the write-ahead log is flushed to stable storage.
///
/// Every WAL write goes straight to the file descriptor, so a record
/// survives *process* death (kill −9, panic, OOM) as soon as the append
/// returns regardless of policy. The policy only paces `fsync`, which
/// is what survives machine/power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record — strongest durability, slowest ingest.
    Always,
    /// fsync after every `n` records — bounded power-loss exposure.
    EveryN(u64),
    /// fsync only when a snapshot rotates — fastest; a power cut can
    /// lose the whole live segment (process crashes still lose
    /// nothing).
    OnSnapshot,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(64)
    }
}

/// Where and how the runtime persists shard state.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the per-shard WAL and snapshot files (created
    /// if absent).
    pub dir: PathBuf,
    /// fsync pacing for the WAL.
    pub sync: SyncPolicy,
}

impl PersistConfig {
    /// Persistence under `dir` with the default [`SyncPolicy`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig { dir: dir.into(), sync: SyncPolicy::default() }
    }

    /// Overrides the sync policy.
    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }
}

/// Typed failures surfaced by [`crate::ShardedRuntime::open`]. Torn
/// *tails* are not errors (they are truncated and recovery proceeds);
/// these are the states recovery refuses to guess about.
#[derive(Debug)]
pub enum RecoveryError {
    /// An I/O operation on a persistence file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file's magic or fixed header fields are damaged.
    BadHeader {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        detail: &'static str,
    },
    /// A damaged WAL record with checksummed-complete records after it.
    /// Truncating here would silently drop records that verify, so
    /// recovery refuses.
    CorruptRecord {
        /// The WAL segment involved.
        path: PathBuf,
        /// Offset of the first damaged byte.
        offset: u64,
    },
    /// A snapshot file failed validation and no previous generation
    /// could take its place.
    CorruptSnapshot {
        /// The snapshot file involved.
        path: PathBuf,
        /// What was wrong.
        detail: &'static str,
    },
    /// A WAL segment's generation does not chain onto the snapshot it
    /// extends — the directory holds files from different histories.
    GenerationMismatch {
        /// The WAL segment involved.
        path: PathBuf,
        /// Generation the chain requires.
        expected: u64,
        /// Generation found in the file.
        found: u64,
    },
    /// The directory holds files for more shards than the runtime was
    /// configured with — reopening with a smaller shard count would
    /// silently strand their data.
    ShardLayoutMismatch {
        /// The persistence directory.
        dir: PathBuf,
        /// Highest shard index found on disk, plus one.
        found: usize,
        /// Shards the runtime was configured with.
        expected: usize,
    },
}

impl RecoveryError {
    pub(crate) fn io(path: &Path, source: io::Error) -> Self {
        RecoveryError::Io { path: path.to_path_buf(), source }
    }

    pub(crate) fn bad_header(path: &Path, detail: &'static str) -> Self {
        RecoveryError::BadHeader { path: path.to_path_buf(), detail }
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            RecoveryError::BadHeader { path, detail } => {
                write!(f, "bad header in {}: {detail}", path.display())
            }
            RecoveryError::CorruptRecord { path, offset } => write!(
                f,
                "corrupt WAL record in {} at byte {offset}: valid records would be lost",
                path.display()
            ),
            RecoveryError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            RecoveryError::GenerationMismatch { path, expected, found } => write!(
                f,
                "generation mismatch in {}: expected {expected}, found {found}",
                path.display()
            ),
            RecoveryError::ShardLayoutMismatch { dir, found, expected } => write!(
                f,
                "{} holds files for {found} shards but the runtime is configured for {expected}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What [`crate::ShardedRuntime::open`] found and did for one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecoveryReport {
    /// The shard.
    pub shard: usize,
    /// Appends that were durable on disk (snapshot + WAL records) —
    /// everything before this per-shard ordinal survived; a producer
    /// that knows its feed order can resume from here.
    pub durable_appends: u64,
    /// WAL appends replayed through the restored monitor.
    pub replayed: u64,
    /// Replayed events that had *not* been delivered before the crash
    /// and were re-emitted to the collector.
    pub re_emitted: u64,
    /// Replayed events suppressed because a WAL ack proved they were
    /// already delivered.
    pub suppressed: u64,
    /// Torn-tail bytes truncated off WAL segments.
    pub truncated_bytes: u64,
    /// The current snapshot was damaged and recovery fell back to the
    /// previous generation.
    pub used_fallback: bool,
    /// Snapshot generation after the open-time rotation.
    pub generation: u64,
}

/// Per-shard recovery outcomes of one [`crate::ShardedRuntime::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// One entry per shard, indexed by shard id.
    pub shards: Vec<ShardRecoveryReport>,
}

impl RecoveryReport {
    /// Durable appends across shards.
    pub fn total_durable_appends(&self) -> u64 {
        self.shards.iter().map(|s| s.durable_appends).sum()
    }

    /// Replayed appends across shards.
    pub fn total_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed).sum()
    }

    /// Torn bytes truncated across shards.
    pub fn total_truncated_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.truncated_bytes).sum()
    }

    /// Whether any shard fell back to its previous snapshot generation.
    pub fn any_fallback(&self) -> bool {
        self.shards.iter().any(|s| s.used_fallback)
    }

    /// A fixed-width table for CLI / log output.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "shard   durable  replayed  re_emitted  suppressed  torn_bytes  fallback  gen\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "{:>5} {:>9} {:>9} {:>11} {:>11} {:>11} {:>9} {:>4}\n",
                s.shard,
                s.durable_appends,
                s.replayed,
                s.re_emitted,
                s.suppressed,
                s.truncated_bytes,
                if s.used_fallback { "yes" } else { "no" },
                s.generation,
            ));
        }
        out
    }
}

/// The well-known paths of one shard's persistence files.
#[derive(Debug, Clone)]
pub(crate) struct ShardPaths {
    pub dir: PathBuf,
    pub snap: PathBuf,
    pub snap_prev: PathBuf,
    pub snap_tmp: PathBuf,
    pub wal: PathBuf,
    pub wal_prev: PathBuf,
}

impl ShardPaths {
    pub fn new(dir: &Path, shard: usize) -> Self {
        ShardPaths {
            dir: dir.to_path_buf(),
            snap: dir.join(format!("shard-{shard}.snap")),
            snap_prev: dir.join(format!("shard-{shard}.snap.prev")),
            snap_tmp: dir.join(format!("shard-{shard}.snap.tmp")),
            wal: dir.join(format!("shard-{shard}.wal")),
            wal_prev: dir.join(format!("shard-{shard}.wal.prev")),
        }
    }
}

/// Refuses to open a directory that holds files for shards the runtime
/// would not serve (their data would be silently stranded).
pub(crate) fn check_shard_layout(dir: &Path, n_shards: usize) -> Result<(), RecoveryError> {
    let entries = match fs::read_dir(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(RecoveryError::io(dir, e)),
        Ok(entries) => entries,
    };
    let mut max_found: Option<usize> = None;
    for entry in entries {
        let entry = entry.map_err(|e| RecoveryError::io(dir, e))?;
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("shard-")) else { continue };
        let Some(digits) = rest.split('.').next() else { continue };
        if let Ok(idx) = digits.parse::<usize>() {
            max_found = Some(max_found.map_or(idx, |m: usize| m.max(idx)));
        }
    }
    match max_found {
        Some(idx) if idx >= n_shards => Err(RecoveryError::ShardLayoutMismatch {
            dir: dir.to_path_buf(),
            found: idx + 1,
            expected: n_shards,
        }),
        _ => Ok(()),
    }
}

/// Applies at-rest disk faults (`BitFlip` / `TruncateWal`) pending for
/// `shard` to its files, before the recovery scan reads them.
pub(crate) fn apply_open_faults(
    dir: &Path,
    shard: usize,
    plan: &Option<Arc<FaultPlan>>,
) -> Result<(), RecoveryError> {
    let Some(plan) = plan else { return Ok(()) };
    let paths = ShardPaths::new(dir, shard);
    for kind in plan.take_open_faults(shard) {
        match kind {
            DiskFaultKind::BitFlip { file, at_byte } => {
                let path = match file {
                    DiskFile::Wal => &paths.wal,
                    DiskFile::Snapshot => &paths.snap,
                };
                let mut bytes = match fs::read(path) {
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(RecoveryError::io(path, e)),
                    Ok(b) => b,
                };
                if bytes.is_empty() {
                    continue;
                }
                let at = (at_byte as usize).min(bytes.len() - 1);
                bytes[at] ^= 0x01;
                fs::write(path, &bytes).map_err(|e| RecoveryError::io(path, e))?;
            }
            DiskFaultKind::TruncateWal { at_byte } => {
                let file = match File::options().write(true).open(&paths.wal) {
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(RecoveryError::io(&paths.wal, e)),
                    Ok(f) => f,
                };
                let len = file.metadata().map_err(|e| RecoveryError::io(&paths.wal, e))?.len();
                file.set_len(at_byte.min(len)).map_err(|e| RecoveryError::io(&paths.wal, e))?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Byte-level recovery inputs for one shard, assembled from the
/// snapshot chain and WAL segments.
#[derive(Debug)]
pub(crate) struct RecoveredShard {
    /// Monitor bytes of the base snapshot (`None`: rebuild from spec).
    pub snapshot: Option<Vec<u8>>,
    /// Appends the base snapshot covers.
    pub snapshot_appends: u64,
    /// Events delivered when the base snapshot was taken.
    pub emitted_at_snapshot: u64,
    /// WAL appends after the base snapshot, in log order.
    pub suffix: Vec<(StreamId, f64)>,
    /// Highest acked delivered-event count (≥ `emitted_at_snapshot`).
    pub last_ack: u64,
    /// Highest generation the on-disk chain reached; the open-time
    /// rotation writes `max_gen + 1`.
    pub max_gen: u64,
    /// Torn-tail bytes physically truncated during the scan.
    pub truncated_bytes: u64,
    /// The current snapshot was damaged; the previous generation and
    /// its WAL segments reproduced the state instead.
    pub used_fallback: bool,
}

impl RecoveredShard {
    fn empty() -> Self {
        RecoveredShard {
            snapshot: None,
            snapshot_appends: 0,
            emitted_at_snapshot: 0,
            suffix: Vec::new(),
            last_ack: 0,
            max_gen: 0,
            truncated_bytes: 0,
            used_fallback: false,
        }
    }

    fn base(&mut self, gen: u64, snap: snapfile::SnapFile) {
        self.max_gen = gen;
        self.snapshot = snap.monitor;
        self.snapshot_appends = snap.appends;
        self.emitted_at_snapshot = snap.emitted;
        self.last_ack = snap.emitted;
    }

    /// Folds the shard's *final* WAL segment in, truncating its torn
    /// tail (the expected residue of a crash mid-write).
    fn fold_final(&mut self, scan: wal::WalScan, path: &Path) -> Result<(), RecoveryError> {
        self.suffix.extend_from_slice(&scan.items);
        if let Some(ack) = scan.last_ack {
            self.last_ack = self.last_ack.max(ack);
        }
        if scan.torn_bytes > 0 {
            wal::truncate_to(path, scan.valid_len)?;
            self.truncated_bytes += scan.torn_bytes;
        }
        Ok(())
    }

    /// Folds the archived `.wal.prev` segment in. A rotated-away
    /// segment sits *mid-chain*: a torn tail here is not crash residue
    /// but lost data (the missing records are part of the state the
    /// damaged current snapshot held), so damage is a typed error
    /// rather than a truncation. A missing file is the (legal, common)
    /// empty inter-generation segment.
    fn fold_prev(
        &mut self,
        paths: &ShardPaths,
        expected_gen: u64,
        shard: usize,
    ) -> Result<(), RecoveryError> {
        match scan_wal(&paths.wal_prev)? {
            WalFile::Valid(v) => {
                if v.shard != shard as u64 {
                    return Err(RecoveryError::bad_header(
                        &paths.wal_prev,
                        "WAL belongs to a different shard",
                    ));
                }
                if v.gen != expected_gen {
                    return Err(RecoveryError::GenerationMismatch {
                        path: paths.wal_prev.clone(),
                        expected: expected_gen,
                        found: v.gen,
                    });
                }
                if v.torn_bytes > 0 {
                    return Err(RecoveryError::CorruptRecord {
                        path: paths.wal_prev.clone(),
                        offset: v.valid_len,
                    });
                }
                self.suffix.extend_from_slice(&v.items);
                if let Some(ack) = v.last_ack {
                    self.last_ack = self.last_ack.max(ack);
                }
                Ok(())
            }
            WalFile::Missing => Ok(()),
            WalFile::TornHeader { .. } => {
                Err(RecoveryError::bad_header(&paths.wal_prev, "archived segment header torn"))
            }
        }
    }
}

/// Scans one shard's files, validates checksums and the generation
/// chain, truncates torn tails, and falls back to the previous snapshot
/// generation if the current one is damaged. Never panics; anything it
/// cannot recover from exactly is a typed [`RecoveryError`].
pub(crate) fn recover_shard(dir: &Path, shard: usize) -> Result<RecoveredShard, RecoveryError> {
    let paths = ShardPaths::new(dir, shard);
    // Tolerate only at-rest corruption here; real I/O errors abort.
    let read_soft = |path: &Path| match snapfile::read_snapshot(path) {
        Ok(s) => Ok(Ok(s)),
        Err(e @ RecoveryError::CorruptSnapshot { .. }) => Ok(Err(e)),
        Err(e) => Err(e),
    };
    let mut snap = read_soft(&paths.snap)?;
    let prev = read_soft(&paths.snap_prev)?;

    // A complete, checksummed `.tmp` is a snapshot whose rotation was
    // interrupted between fsync and rename — the newest durable state.
    // Adopt it if it extends the chain; otherwise it is debris.
    match read_soft(&paths.snap_tmp)? {
        Ok(Some(tmp))
            if match (&snap, &prev) {
                (Ok(Some(s)), _) => tmp.gen == s.gen + 1,
                (_, Ok(Some(p))) => tmp.gen == p.gen + 1,
                (Ok(None), Ok(None)) => true,
                _ => false,
            } =>
        {
            fs::rename(&paths.snap_tmp, &paths.snap)
                .map_err(|e| RecoveryError::io(&paths.snap_tmp, e))?;
            snap = Ok(Some(tmp));
        }
        _ => {
            let _ = fs::remove_file(&paths.snap_tmp);
        }
    }

    let shard_check = |scan: &wal::WalScan, path: &Path| {
        if scan.shard != shard as u64 {
            Err(RecoveryError::bad_header(path, "WAL belongs to a different shard"))
        } else {
            Ok(())
        }
    };

    let mut out = RecoveredShard::empty();
    match snap {
        Ok(Some(s)) => {
            let snap_gen = s.gen;
            out.base(snap_gen, s);
            match scan_wal(&paths.wal)? {
                WalFile::Valid(w) => {
                    shard_check(&w, &paths.wal)?;
                    if w.gen == snap_gen {
                        out.fold_final(w, &paths.wal)?;
                    } else if w.gen + 1 == snap_gen {
                        // The crash hit after the new snapshot landed
                        // but before the old segment was archived: its
                        // records are covered by the snapshot. Archive
                        // it now so the chain stays well-formed.
                        if w.torn_bytes > 0 {
                            wal::truncate_to(&paths.wal, w.valid_len)?;
                            out.truncated_bytes += w.torn_bytes;
                        }
                        fs::rename(&paths.wal, &paths.wal_prev)
                            .map_err(|e| RecoveryError::io(&paths.wal, e))?;
                    } else {
                        return Err(RecoveryError::GenerationMismatch {
                            path: paths.wal,
                            expected: snap_gen,
                            found: w.gen,
                        });
                    }
                }
                // Crash between the snapshot rename and the fresh WAL's
                // creation: no records since the snapshot.
                WalFile::Missing => {}
                WalFile::TornHeader { torn_bytes } => {
                    out.truncated_bytes += torn_bytes;
                    fs::remove_file(&paths.wal).map_err(|e| RecoveryError::io(&paths.wal, e))?;
                }
            }
        }
        snap_state => {
            let snap_err = snap_state.err();
            match prev {
                Ok(Some(p)) => {
                    out.used_fallback = snap_err.is_some();
                    let prev_gen = p.gen;
                    out.base(prev_gen, p);
                    match scan_wal(&paths.wal)? {
                        WalFile::Valid(w) => {
                            shard_check(&w, &paths.wal)?;
                            if w.gen == prev_gen {
                                // Crash before the WAL rename: the live
                                // segment still extends the previous
                                // snapshot directly; any `.wal.prev` is
                                // an older generation the snapshot
                                // already covers.
                                out.fold_final(w, &paths.wal)?;
                            } else if w.gen == prev_gen + 1 {
                                out.max_gen = prev_gen + 1;
                                out.fold_prev(&paths, prev_gen, shard)?;
                                out.fold_final(w, &paths.wal)?;
                            } else {
                                return Err(RecoveryError::GenerationMismatch {
                                    path: paths.wal,
                                    expected: prev_gen + 1,
                                    found: w.gen,
                                });
                            }
                        }
                        WalFile::Missing => {
                            out.max_gen = prev_gen + 1;
                            out.fold_prev(&paths, prev_gen, shard)?;
                        }
                        WalFile::TornHeader { .. } => {
                            return Err(RecoveryError::bad_header(
                                &paths.wal,
                                "WAL header torn with a fallback pending",
                            ));
                        }
                    }
                }
                Ok(None) => {
                    if let Some(e) = snap_err {
                        // Current snapshot corrupt, nothing to fall
                        // back to.
                        return Err(e);
                    }
                    // Fresh directory or pre-first-snapshot crash.
                    match scan_wal(&paths.wal)? {
                        WalFile::Valid(w) => {
                            shard_check(&w, &paths.wal)?;
                            if w.gen != 0 {
                                return Err(RecoveryError::GenerationMismatch {
                                    path: paths.wal,
                                    expected: 0,
                                    found: w.gen,
                                });
                            }
                            out.fold_final(w, &paths.wal)?;
                        }
                        WalFile::Missing => {}
                        WalFile::TornHeader { torn_bytes } => {
                            out.truncated_bytes += torn_bytes;
                            fs::remove_file(&paths.wal)
                                .map_err(|e| RecoveryError::io(&paths.wal, e))?;
                        }
                    }
                }
                Err(e) => return Err(snap_err.unwrap_or(e)),
            }
        }
    }
    Ok(out)
}

/// fsync through the fault plan: bumps the shard's fsync ordinal, lets
/// an injected `FailFsync` veto, then syncs for real.
fn fault_fsync(
    file: &File,
    path: &Path,
    shard: usize,
    ordinal: &mut u64,
    faults: &Option<Arc<FaultPlan>>,
    tel: &RuntimeTelemetry,
) -> io::Result<()> {
    *ordinal += 1;
    if let Some(plan) = faults {
        if plan.fsync_fails(shard, *ordinal) {
            tel.fsync_failures.inc();
            return Err(io::Error::other(format!(
                "injected fsync failure on {} (ordinal {ordinal})",
                path.display()
            )));
        }
    }
    file.sync_all()?;
    tel.fsyncs.inc();
    Ok(())
}

/// One shard's live durable-write handle: appends to the WAL and
/// rotates snapshot generations. Owned by the shard's recovery journal,
/// so all writes are serialized under the journal lock.
#[derive(Debug)]
pub(crate) struct ShardDisk {
    paths: ShardPaths,
    shard: usize,
    gen: u64,
    /// `None` after a hard write error — the shard is wedged and must
    /// fail stop rather than accept appends it cannot journal.
    wal: Option<WalWriter>,
    sync: SyncPolicy,
    records_since_sync: u64,
    fsync_ordinal: u64,
    pub wedged: bool,
    faults: Option<Arc<FaultPlan>>,
    tel: RuntimeTelemetry,
    /// Scratch for coalesced group writes, reused across groups so the
    /// steady-state ingest path performs no per-group allocation.
    group_buf: Vec<u8>,
}

impl ShardDisk {
    /// Builds the live handle over a freshly recovered shard and
    /// performs the open-time rotation: the recovered state is written
    /// as generation `base_gen + 1`, leaving a pristine chain. If the
    /// rotation's fsync is vetoed by the fault plan, the shard resumes
    /// its existing WAL segment instead (the chain stays
    /// self-consistent either way).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: &Path,
        shard: usize,
        sync: SyncPolicy,
        faults: Option<Arc<FaultPlan>>,
        tel: RuntimeTelemetry,
        base_gen: u64,
        appends: u64,
        emitted: u64,
        monitor: Option<&[u8]>,
    ) -> io::Result<Self> {
        let mut disk = ShardDisk {
            paths: ShardPaths::new(dir, shard),
            shard,
            gen: base_gen,
            wal: None,
            sync,
            records_since_sync: 0,
            fsync_ordinal: 0,
            wedged: false,
            faults,
            tel,
            group_buf: Vec::new(),
        };
        if !disk.rotate(appends, emitted, monitor)? {
            disk.wal = Some(match fs::metadata(&disk.paths.wal) {
                Ok(meta) => WalWriter::open_append(&disk.paths.wal, meta.len())?,
                Err(_) => WalWriter::create(&disk.paths.wal, base_gen, shard as u64)?,
            });
        }
        Ok(disk)
    }

    /// Appends a run of batch records as one coalesced `write(2)`
    /// followed by at most one fsync — the group-commit write-ahead
    /// step (a one-batch group is the degenerate case; this is the only
    /// batch-record write path). The on-disk bytes are identical to
    /// framing and appending each record separately (same framed
    /// records, same order), so recovery is unchanged: a tear anywhere
    /// inside the group leaves a clean prefix of complete records plus
    /// a truncatable tail. Under [`SyncPolicy::Always`] the single
    /// `maybe_sync` at the end covers every record in the group; the
    /// caller must not apply or ack any batch of the group before this
    /// returns `Ok`. A failure — including an injected torn write —
    /// wedges the handle; the caller must fail stop.
    pub fn append_group<'a, I>(&mut self, batches: I) -> io::Result<()>
    where
        I: Iterator<Item = &'a [(StreamId, f64)]>,
    {
        if self.wedged {
            // A prior failure may have left partial bytes on disk;
            // appending after them would bury them mid-log.
            return Err(io::Error::other("shard WAL is wedged"));
        }
        let Some(w) = self.wal.as_mut() else {
            self.wedged = true;
            return Err(io::Error::other("shard WAL is wedged"));
        };
        self.group_buf.clear();
        let mut records = 0u64;
        for items in batches {
            wal::frame_record_into(&mut self.group_buf, |buf| wal::encode_batch_into(buf, items));
            records += 1;
        }
        if records == 0 {
            return Ok(());
        }
        let group_end = w.bytes + self.group_buf.len() as u64;
        let tear = self.faults.as_ref().and_then(|p| p.tear_wal(self.shard, w.bytes, group_end));
        let span = self.tel.wal_append.span();
        match w.append_coalesced(&self.group_buf, tear) {
            Ok(n) => {
                drop(span);
                self.tel.wal_records.add(records);
                self.tel.wal_bytes.add(n);
                self.tel.wal_group_writes.inc();
                self.records_since_sync += records;
                self.maybe_sync();
                Ok(())
            }
            Err(e) => {
                self.wedged = true;
                Err(e)
            }
        }
    }

    /// Appends an ack record carrying the cumulative delivered-event
    /// count. Errors wedge the handle silently — the events are already
    /// delivered, and the next batch append fail-stops.
    pub fn append_ack(&mut self, emitted: u64) {
        if self.wedged {
            return;
        }
        let Some(w) = self.wal.as_mut() else {
            self.wedged = true;
            return;
        };
        match w.append(&wal::encode_ack(emitted), None) {
            Ok(n) => {
                self.tel.wal_records.inc();
                self.tel.wal_bytes.add(n);
                self.records_since_sync += 1;
                self.maybe_sync();
            }
            Err(_) => self.wedged = true,
        }
    }

    fn maybe_sync(&mut self) {
        let due = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.records_since_sync >= n.max(1),
            SyncPolicy::OnSnapshot => false,
        };
        if !due {
            return;
        }
        self.records_since_sync = 0;
        if let Some(w) = &self.wal {
            // A failed fsync is not fatal: the bytes are written and
            // survive process death; only power loss is exposed.
            let _ = fault_fsync(
                w.file(),
                &self.paths.wal,
                self.shard,
                &mut self.fsync_ordinal,
                &self.faults,
                &self.tel,
            );
        }
    }

    /// The generation the live chain is currently on.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Rotates to a new snapshot generation: `snap.tmp` written and
    /// fsynced, current generation renamed to `.prev`, tmp renamed into
    /// place, fresh WAL started. Nothing is removed before the new
    /// snapshot is durable and in place, so every crash window leaves
    /// at least one intact generation. Returns `Ok(false)` when the new
    /// snapshot's fsync failed and the rotation was aborted (previous
    /// generation kept, current WAL kept growing). Hard rename/create
    /// failures wedge the handle.
    pub fn rotate(
        &mut self,
        appends: u64,
        emitted: u64,
        monitor: Option<&[u8]>,
    ) -> io::Result<bool> {
        let new_gen = self.gen + 1;
        let tmp =
            snapfile::write_snapshot(&self.paths.snap_tmp, new_gen, appends, emitted, monitor)?;
        if fault_fsync(
            &tmp,
            &self.paths.snap_tmp,
            self.shard,
            &mut self.fsync_ordinal,
            &self.faults,
            &self.tel,
        )
        .is_err()
        {
            let _ = fs::remove_file(&self.paths.snap_tmp);
            return Ok(false);
        }
        // Seal the outgoing segment before it becomes `.prev`.
        if let Some(w) = &self.wal {
            let _ = fault_fsync(
                w.file(),
                &self.paths.wal,
                self.shard,
                &mut self.fsync_ordinal,
                &self.faults,
                &self.tel,
            );
        }
        let snap_archived = fs::rename(&self.paths.snap, &self.paths.snap_prev).is_ok();
        let wal_archived = fs::rename(&self.paths.wal, &self.paths.wal_prev).is_ok();
        fs::rename(&self.paths.snap_tmp, &self.paths.snap).inspect_err(|_| {
            self.wedged = true;
            self.wal = None;
        })?;
        // With the new generation in place, drop `.prev` files the
        // renames above did not refresh — a stale older generation
        // would mischain a later fallback.
        if !snap_archived {
            let _ = fs::remove_file(&self.paths.snap_prev);
        }
        if !wal_archived {
            let _ = fs::remove_file(&self.paths.wal_prev);
        }
        let fresh =
            WalWriter::create(&self.paths.wal, new_gen, self.shard as u64).inspect_err(|_| {
                self.wedged = true;
                self.wal = None;
            })?;
        let _ = fault_fsync(
            fresh.file(),
            &self.paths.wal,
            self.shard,
            &mut self.fsync_ordinal,
            &self.faults,
            &self.tel,
        );
        self.wal = Some(fresh);
        // Make the renames themselves durable (best-effort; not every
        // platform allows opening a directory for sync).
        if let Ok(d) = File::open(&self.paths.dir) {
            let _ = d.sync_all();
        }
        self.gen = new_gen;
        self.records_since_sync = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdpersist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn disk(dir: &Path, faults: Option<Arc<FaultPlan>>) -> ShardDisk {
        ShardDisk::create(
            dir,
            0,
            SyncPolicy::EveryN(2),
            faults,
            RuntimeTelemetry::default(),
            0,
            0,
            0,
            None,
        )
        .unwrap()
    }

    /// One batch as a degenerate commit group — the production write
    /// path for a queue with no backlog.
    fn append_one(d: &mut ShardDisk, items: &[(StreamId, f64)]) -> io::Result<()> {
        d.append_group(std::iter::once(items))
    }

    #[test]
    fn write_rotate_recover_round_trip() {
        let dir = tempdir("rt");
        let mut d = disk(&dir, None);
        append_one(&mut d, &[(0, 1.0), (1, 2.0)]).unwrap();
        d.append_ack(1);
        append_one(&mut d, &[(2, 3.0)]).unwrap();
        let r = recover_shard(&dir, 0).unwrap();
        assert_eq!(r.suffix, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(r.last_ack, 1);
        assert_eq!(r.max_gen, 1, "open-time rotation advanced the chain");
        assert!(!r.used_fallback);

        // Rotate: state folds into the snapshot, the WAL restarts.
        assert!(d.rotate(3, 1, Some(b"mon")).unwrap());
        append_one(&mut d, &[(0, 4.0)]).unwrap();
        let r = recover_shard(&dir, 0).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"mon".as_slice()));
        assert_eq!((r.snapshot_appends, r.emitted_at_snapshot), (3, 1));
        assert_eq!(r.suffix, vec![(0, 4.0)]);
        assert_eq!(r.max_gen, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_a_generation() {
        let dir = tempdir("fb");
        let mut d = disk(&dir, None);
        append_one(&mut d, &[(0, 1.0)]).unwrap();
        assert!(d.rotate(1, 0, Some(b"state-1")).unwrap());
        append_one(&mut d, &[(0, 2.0)]).unwrap();

        // Damage the current snapshot: recovery must rebuild the same
        // state from snap.prev + wal.prev + wal.
        let paths = ShardPaths::new(&dir, 0);
        let mut bytes = fs::read(&paths.snap).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&paths.snap, &bytes).unwrap();

        let r = recover_shard(&dir, 0).unwrap();
        assert!(r.used_fallback);
        // Base is the gen-1 snapshot (taken by the open-time rotation,
        // covering zero appends); both batches replay from the WALs.
        assert_eq!(r.suffix, vec![(0, 1.0), (0, 2.0)]);
        assert_eq!(r.max_gen, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_generations_corrupt_is_a_typed_error() {
        let dir = tempdir("dbl");
        let mut d = disk(&dir, None);
        append_one(&mut d, &[(0, 1.0)]).unwrap();
        assert!(d.rotate(1, 0, Some(b"state-1")).unwrap());
        let paths = ShardPaths::new(&dir, 0);
        for p in [&paths.snap, &paths.snap_prev] {
            let mut bytes = fs::read(p).unwrap();
            let at = bytes.len() - 1;
            bytes[at] ^= 0x10;
            fs::write(p, &bytes).unwrap();
        }
        assert!(matches!(recover_shard(&dir, 0), Err(RecoveryError::CorruptSnapshot { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_failure_aborts_rotation_but_keeps_the_chain() {
        let dir = tempdir("fsync");
        {
            let mut d = disk(&dir, None);
            append_one(&mut d, &[(0, 1.0)]).unwrap();
        }
        // Reopen with the first fsync (the open-time rotation's tmp
        // sync) failing: the rotation aborts and the shard resumes the
        // existing gen-1 segment.
        let plan = Arc::new(FaultPlan::new().disk_fault(0, DiskFaultKind::FailFsync { nth: 1 }));
        let rec = recover_shard(&dir, 0).unwrap();
        let mut d = ShardDisk::create(
            &dir,
            0,
            SyncPolicy::Always,
            Some(plan),
            RuntimeTelemetry::default(),
            rec.max_gen,
            rec.snapshot_appends + rec.suffix.len() as u64,
            rec.last_ack,
            None,
        )
        .unwrap();
        assert!(!d.wedged);
        append_one(&mut d, &[(0, 2.0)]).unwrap();
        let r = recover_shard(&dir, 0).unwrap();
        assert_eq!(r.suffix, vec![(0, 1.0), (0, 2.0)], "appends landed on the resumed segment");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_wedges_and_prefix_recovers() {
        let dir = tempdir("tear");
        let plan =
            Arc::new(FaultPlan::new().disk_fault(0, DiskFaultKind::TornWrite { at_byte: 60 }));
        let mut d = disk(&dir, Some(plan));
        append_one(&mut d, &[(0, 1.0)]).unwrap();
        // Byte 60 lands inside the second record's frame: it tears.
        assert!(append_one(&mut d, &[(0, 2.0), (1, 3.0)]).is_err());
        assert!(d.wedged);
        assert!(append_one(&mut d, &[(0, 9.0)]).is_err(), "wedged handles fail stop");
        let r = recover_shard(&dir, 0).unwrap();
        assert_eq!(r.suffix, vec![(0, 1.0)], "pre-tear prefix survives");
        assert!(r.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adopted_tmp_snapshot_is_the_newest_state() {
        let dir = tempdir("tmp");
        let mut d = disk(&dir, None);
        append_one(&mut d, &[(0, 1.0)]).unwrap();
        // Simulate a crash between tmp fsync and the renames: write the
        // next generation's snapshot at the tmp path by hand.
        let paths = ShardPaths::new(&dir, 0);
        let f = snapfile::write_snapshot(&paths.snap_tmp, 2, 1, 0, Some(b"newest")).unwrap();
        f.sync_all().unwrap();
        let r = recover_shard(&dir, 0).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"newest".as_slice()));
        assert_eq!(r.max_gen, 2);
        assert!(
            r.suffix.is_empty(),
            "the live gen-1 segment is superseded by the adopted snapshot"
        );
        assert!(paths.wal_prev.exists(), "superseded segment was archived, not deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_layout_guard_catches_stranded_shards() {
        let dir = tempdir("layout");
        fs::write(dir.join("shard-3.wal"), b"x").unwrap();
        assert!(check_shard_layout(&dir, 4).is_ok());
        assert!(matches!(
            check_shard_layout(&dir, 3),
            Err(RecoveryError::ShardLayoutMismatch { found: 4, expected: 3, .. })
        ));
        assert!(check_shard_layout(&dir.join("absent"), 1).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
