//! Shared per-shard counters and the [`RuntimeStats`] snapshot.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Lock-free counters one shard's worker and its producers share.
/// Producers bump the queue depth on enqueue; the worker decrements on
/// dequeue and owns every other field.
#[derive(Debug)]
pub(crate) struct ShardCounters {
    pub appends: AtomicU64,
    pub events: AtomicU64,
    pub batches: AtomicU64,
    pub restarts: AtomicU64,
    pub queue_depth: AtomicUsize,
    pub queue_high_water: AtomicUsize,
    pub latency_sum_ns: AtomicU64,
    pub latency_min_ns: AtomicU64,
    pub latency_max_ns: AtomicU64,
}

impl ShardCounters {
    pub fn new() -> Self {
        ShardCounters {
            appends: AtomicU64::new(0),
            events: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            latency_sum_ns: AtomicU64::new(0),
            latency_min_ns: AtomicU64::new(u64::MAX),
            latency_max_ns: AtomicU64::new(0),
        }
    }

    /// Producer side: called *before* the send attempt, so the depth
    /// never underflows on the worker side. Pair a failed send with
    /// [`Self::undo_enqueued`].
    pub fn note_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Producer side: the send that followed [`Self::note_enqueued`]
    /// failed; roll the depth back.
    pub fn undo_enqueued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Worker side: one batch dequeued. The high-water mark is sampled
    /// here too, not just on enqueue: a queue that filled while the
    /// worker was stalled and is drained without concurrent enqueues
    /// would otherwise under-report its peak (producers may bail out
    /// with `QueueFull` before ever bumping the mark past the stall).
    pub fn note_dequeued(&self) {
        let depth = self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Worker side: one batch fully processed, `ns` nanoseconds after it
    /// was submitted.
    pub fn note_batch(&self, ns: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_min_ns.fetch_min(ns, Ordering::Relaxed);
        self.latency_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ShardStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let latency = match self.latency_sum_ns.load(Ordering::Relaxed).checked_div(batches) {
            None => LatencyStats::default(),
            Some(mean_ns) => LatencyStats {
                min: Some(Duration::from_nanos(self.latency_min_ns.load(Ordering::Relaxed))),
                mean: Some(Duration::from_nanos(mean_ns)),
                max: Some(Duration::from_nanos(self.latency_max_ns.load(Ordering::Relaxed))),
            },
        };
        ShardStats {
            appends: self.appends.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            batches,
            restarts: self.restarts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            batch_latency: latency,
        }
    }
}

/// Submit-to-drained batch latency extremes and mean; `None` until the
/// shard has processed at least one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Fastest batch.
    pub min: Option<Duration>,
    /// Arithmetic mean over all batches.
    pub mean: Option<Duration>,
    /// Slowest batch.
    pub max: Option<Duration>,
}

/// One shard's counters at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Values appended into this shard's monitor.
    pub appends: u64,
    /// Events this shard pushed to the collector.
    pub events: u64,
    /// Batches drained.
    pub batches: u64,
    /// Times this shard's worker died and was restored by the
    /// supervisor (always `0` with recovery disabled).
    pub restarts: u64,
    /// Messages currently queued (approximate — producers and the worker
    /// race by design).
    pub queue_depth: usize,
    /// Highest queue depth observed since launch.
    pub queue_high_water: usize,
    /// Submit-to-drained latency summary.
    pub batch_latency: LatencyStats,
}

/// A point-in-time snapshot of the whole runtime, one entry per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl RuntimeStats {
    /// Total values appended across shards.
    pub fn total_appends(&self) -> u64 {
        self.shards.iter().map(|s| s.appends).sum()
    }

    /// Total events emitted across shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Highest queue high-water mark across shards.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }

    /// Total worker restarts across shards.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// A small fixed-width table for CLI / log output.
    ///
    /// ```text
    /// shard   appends     events   batches  restarts  q_depth  q_hwm  lat_min  lat_mean  lat_max
    ///     0      1024         37        64         1        0      9    1.2µs    3.4µs   0.21ms
    /// ```
    pub fn render(&self) -> String {
        fn dur(d: Option<Duration>) -> String {
            match d {
                None => "-".to_string(),
                Some(d) if d.as_secs_f64() >= 1e-3 => {
                    format!("{:.2}ms", d.as_secs_f64() * 1e3)
                }
                Some(d) => format!("{:.1}µs", d.as_secs_f64() * 1e6),
            }
        }
        let mut out = String::from(
            "shard   appends     events   batches  restarts  q_depth  q_hwm  lat_min  lat_mean  lat_max\n",
        );
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "{i:>5} {:>9} {:>10} {:>9} {:>9} {:>8} {:>6} {:>8} {:>9} {:>8}\n",
                s.appends,
                s.events,
                s.batches,
                s.restarts,
                s.queue_depth,
                s.queue_high_water,
                dur(s.batch_latency.min),
                dur(s.batch_latency.mean),
                dur(s.batch_latency.max),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_is_sampled_on_drain_too() {
        // Fill-then-drain with no enqueues racing the drain: the peak
        // must still be observed. Before the drain-side sample, only
        // `note_enqueued` bumped the mark, so a worker stalled behind a
        // full queue could report a high-water mark below the real peak.
        let c = ShardCounters::new();
        for _ in 0..5 {
            c.note_enqueued();
        }
        // Simulate the enqueue-side mark having been missed (e.g. reset
        // by a racing reader of a fresh counter set after restore).
        c.queue_high_water.store(0, Ordering::Relaxed);
        c.note_dequeued();
        assert_eq!(c.snapshot().queue_high_water, 5, "drain must observe the pre-pop depth");
        for _ in 0..4 {
            c.note_dequeued();
        }
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_high_water, 5);
    }

    #[test]
    fn undo_rolls_back_depth_but_not_high_water() {
        let c = ShardCounters::new();
        c.note_enqueued();
        c.undo_enqueued();
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_high_water, 1, "the attempt still observed depth 1");
    }

    #[test]
    fn restarts_flow_through_snapshot_and_totals() {
        let c = ShardCounters::new();
        c.restarts.fetch_add(2, Ordering::Relaxed);
        let stats = RuntimeStats { shards: vec![c.snapshot(), ShardCounters::new().snapshot()] };
        assert_eq!(stats.shards[0].restarts, 2);
        assert_eq!(stats.total_restarts(), 2);
        assert!(stats.render().contains("restarts"));
    }
}
