//! Shared per-shard counters and the [`RuntimeStats`] snapshot.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use stardust_telemetry::{duration_buckets_ns, Histogram};

/// Lock-free counters one shard's worker and its producers share.
/// Producers bump the queue depth on enqueue; the worker decrements on
/// dequeue and owns every other field.
///
/// Batch latency is kept in a fixed-bucket histogram (27 buckets
/// doubling from 250 ns up to ~16.8 s, plus the implicit +Inf bucket)
/// whose sum accumulates saturating — a shard that runs long enough to
/// overflow `u64` nanoseconds pins at `u64::MAX` instead of wrapping
/// into a bogus mean.
#[derive(Debug)]
pub(crate) struct ShardCounters {
    pub appends: AtomicU64,
    pub events: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    pub restarts: AtomicU64,
    pub queue_depth: AtomicUsize,
    pub queue_high_water: AtomicUsize,
    pub latency: Histogram,
}

impl ShardCounters {
    pub fn new() -> Self {
        ShardCounters {
            appends: AtomicU64::new(0),
            events: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            latency: Histogram::standalone(duration_buckets_ns()),
        }
    }

    /// Producer side: called *before* the send attempt, so the depth
    /// never underflows on the worker side. Pair a failed send with
    /// [`Self::undo_enqueued`].
    pub fn note_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Producer side: the send that followed [`Self::note_enqueued`]
    /// failed; roll the depth back.
    pub fn undo_enqueued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Worker side: `n` batches dequeued in one bulk drain. The depth is
    /// sampled *before* the group is subtracted — a grouped drain that
    /// empties a backlogged queue must record the backlog as the
    /// high-water mark, not the post-drain zero. The sample matters on
    /// the drain side, not just on enqueue: a queue that filled while
    /// the worker was stalled and is drained without concurrent
    /// enqueues would otherwise under-report its peak (producers may
    /// bail out with `QueueFull` before ever bumping the mark past the
    /// stall).
    pub fn note_drained(&self, n: usize) {
        if n == 0 {
            return;
        }
        let depth = self.queue_depth.fetch_sub(n, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Worker side: one batch fully processed, `ns` nanoseconds after it
    /// was submitted.
    pub fn note_batch(&self, ns: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(ns);
    }

    pub fn snapshot(&self) -> ShardStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let h = self.latency.snapshot();
        let nanos = |n: Option<u64>| n.map(Duration::from_nanos);
        let latency = LatencyStats {
            min: nanos(h.min),
            mean: h.mean().map(|ns| Duration::from_nanos(ns as u64)),
            p50: nanos(h.p50),
            p95: nanos(h.p95),
            max: nanos(h.max),
        };
        ShardStats {
            appends: self.appends.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            restarts: self.restarts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            batch_latency: latency,
        }
    }
}

/// Submit-to-drained batch latency summary; every field is `None`
/// until the shard has processed at least one batch.
///
/// The extremes and mean are exact; `p50`/`p95` are estimated from a
/// fixed-bucket histogram (bounds doubling from 250 ns — see
/// [`stardust_telemetry::duration_buckets_ns`]) by linear interpolation
/// within the covering bucket, clamped to the observed min/max, so the
/// worst-case quantile error is half a bucket width (< 2× the true
/// value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Fastest batch.
    pub min: Option<Duration>,
    /// Arithmetic mean over all batches (the underlying nanosecond sum
    /// accumulates saturating, so it pins instead of wrapping).
    pub mean: Option<Duration>,
    /// Median batch latency (histogram estimate).
    pub p50: Option<Duration>,
    /// 95th-percentile batch latency (histogram estimate).
    pub p95: Option<Duration>,
    /// Slowest batch.
    pub max: Option<Duration>,
}

/// One shard's counters at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Values appended into this shard's monitor.
    pub appends: u64,
    /// Events this shard pushed to the collector.
    pub events: u64,
    /// Non-finite (NaN/Inf) samples rejected at the append boundary.
    /// Rejected samples still count toward `appends`.
    pub rejected: u64,
    /// Batches drained.
    pub batches: u64,
    /// Times this shard's worker died and was restored by the
    /// supervisor (always `0` with recovery disabled).
    pub restarts: u64,
    /// Messages currently queued (approximate — producers and the worker
    /// race by design).
    pub queue_depth: usize,
    /// Highest queue depth observed since launch.
    pub queue_high_water: usize,
    /// Submit-to-drained latency summary.
    pub batch_latency: LatencyStats,
}

/// Cumulative counters of the cross-shard correlation path: sketch
/// publications absorbed by the collector board, and the fate of every
/// cross-shard pair considered by
/// [`crate::ShardedRuntime::correlated_pairs`]. Pruning is sound
/// (pruned pairs are provably outside the radius), so
/// `candidates + pruned` is the number of cross-shard pairs considered
/// and `confirmed / candidates` is the prune precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrossCorrStats {
    /// Sketch publications absorbed (one per stream per cadence firing).
    pub exchanges: u64,
    /// Cross-shard pairs that survived the prune and were verified
    /// exactly.
    pub candidates: u64,
    /// Cross-shard pairs dismissed by the sketch distance lower bound.
    pub pruned: u64,
    /// Candidates confirmed correlated by exact verification.
    pub confirmed: u64,
}

/// A point-in-time snapshot of the whole runtime, one entry per worker
/// slot plus the elastic-routing level readings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-slot counters, indexed by worker slot.
    pub shards: Vec<ShardStats>,
    /// Routing epoch: bumped once per completed group migration.
    pub epoch: u64,
    /// Worker slots currently owning at least one stream group.
    pub live_shards: usize,
    /// Completed group migrations (splits and merges) since launch.
    pub migrations: u64,
}

impl RuntimeStats {
    /// Total values appended across shards.
    pub fn total_appends(&self) -> u64 {
        self.shards.iter().map(|s| s.appends).sum()
    }

    /// Total events emitted across shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Total non-finite samples rejected across shards.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Highest queue high-water mark across shards.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }

    /// Total worker restarts across shards.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// A small fixed-width table for CLI / log output.
    ///
    /// ```text
    /// shard   appends     events  rejected   batches  restarts  q_depth  q_hwm  lat_min  lat_p50  lat_mean  lat_p95  lat_max
    ///     0      1024         37         0        64         1        0      9    1.2µs    2.8µs     3.4µs   11.0µs   0.21ms
    /// ```
    pub fn render(&self) -> String {
        fn dur(d: Option<Duration>) -> String {
            match d {
                None => "-".to_string(),
                Some(d) if d.as_secs_f64() >= 1e-3 => {
                    format!("{:.2}ms", d.as_secs_f64() * 1e3)
                }
                Some(d) => format!("{:.1}µs", d.as_secs_f64() * 1e6),
            }
        }
        let mut out = String::from(
            "shard   appends     events  rejected   batches  restarts  q_depth  q_hwm  lat_min  lat_p50  lat_mean  lat_p95  lat_max\n",
        );
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "{i:>5} {:>9} {:>10} {:>9} {:>9} {:>9} {:>8} {:>6} {:>8} {:>8} {:>9} {:>8} {:>8}\n",
                s.appends,
                s.events,
                s.rejected,
                s.batches,
                s.restarts,
                s.queue_depth,
                s.queue_high_water,
                dur(s.batch_latency.min),
                dur(s.batch_latency.p50),
                dur(s.batch_latency.mean),
                dur(s.batch_latency.p95),
                dur(s.batch_latency.max),
            ));
        }
        out
    }

    /// Publishes the snapshot into `registry` as per-shard gauges
    /// (`stardust_shard_*{shard="N"}`). Gauges rather than counters
    /// because a snapshot is a point-in-time level: queue depth moves
    /// both ways, and repeated exports overwrite rather than accumulate.
    pub fn export(&self, registry: &stardust_telemetry::Registry) {
        let gauge = |name: &str, help: &str, shard: usize, v: f64| {
            registry
                .gauge(&stardust_telemetry::labeled(name, &[("shard", &shard.to_string())]), help)
                .set(v);
        };
        let ns = |d: Option<Duration>| d.map(|d| d.as_nanos() as f64).unwrap_or(0.0);
        registry
            .gauge("stardust_runtime_epoch", "Routing epoch (bumped per completed migration)")
            .set(self.epoch as f64);
        registry
            .gauge("stardust_runtime_live_shards", "Worker slots owning at least one stream group")
            .set(self.live_shards as f64);
        // Named without the `_total` suffix on purpose: the runtime's
        // telemetry layer registers a *counter* of the same quantity as
        // `stardust_runtime_migrations_total`, and both may share one
        // registry.
        registry
            .gauge("stardust_runtime_migrations", "Completed group migrations since launch")
            .set(self.migrations as f64);
        for (i, s) in self.shards.iter().enumerate() {
            gauge("stardust_shard_appends", "Values appended into the shard's monitor", i, {
                s.appends as f64
            });
            gauge("stardust_shard_events", "Events the shard pushed to the collector", i, {
                s.events as f64
            });
            gauge(
                "stardust_shard_rejected",
                "Non-finite samples rejected at the append boundary",
                i,
                s.rejected as f64,
            );
            gauge("stardust_shard_batches", "Batches the shard drained", i, s.batches as f64);
            gauge("stardust_shard_restarts", "Worker restarts performed by the supervisor", i, {
                s.restarts as f64
            });
            gauge("stardust_shard_queue_depth", "Messages currently queued (approximate)", i, {
                s.queue_depth as f64
            });
            gauge("stardust_shard_queue_high_water", "Highest queue depth observed", i, {
                s.queue_high_water as f64
            });
            gauge(
                "stardust_shard_batch_latency_p50_ns",
                "Median submit-to-drained batch latency, nanoseconds",
                i,
                ns(s.batch_latency.p50),
            );
            gauge(
                "stardust_shard_batch_latency_p95_ns",
                "95th-percentile submit-to-drained batch latency, nanoseconds",
                i,
                ns(s.batch_latency.p95),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_is_sampled_on_drain_too() {
        // Fill-then-drain with no enqueues racing the drain: the peak
        // must still be observed. Before the drain-side sample, only
        // `note_enqueued` bumped the mark, so a worker stalled behind a
        // full queue could report a high-water mark below the real peak.
        let c = ShardCounters::new();
        for _ in 0..5 {
            c.note_enqueued();
        }
        // Simulate the enqueue-side mark having been missed (e.g. reset
        // by a racing reader of a fresh counter set after restore).
        c.queue_high_water.store(0, Ordering::Relaxed);
        c.note_drained(1);
        assert_eq!(c.snapshot().queue_high_water, 5, "drain must observe the pre-pop depth");
        for _ in 0..4 {
            c.note_drained(1);
        }
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_high_water, 5);
    }

    #[test]
    fn bulk_drain_samples_high_water_before_the_pop() {
        // A grouped drain removes the whole backlog in one step; the
        // high-water mark must still reflect the pre-drain depth rather
        // than the post-drain zero.
        let c = ShardCounters::new();
        for _ in 0..7 {
            c.note_enqueued();
        }
        c.queue_high_water.store(0, Ordering::Relaxed);
        c.note_drained(7);
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_high_water, 7, "bulk drain must observe the pre-pop depth");
        // A zero-batch drain (a group of queries, say) records nothing.
        c.note_drained(0);
        assert_eq!(c.snapshot().queue_depth, 0);
    }

    #[test]
    fn undo_rolls_back_depth_but_not_high_water() {
        let c = ShardCounters::new();
        c.note_enqueued();
        c.undo_enqueued();
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_high_water, 1, "the attempt still observed depth 1");
    }

    #[test]
    fn latency_quantiles_are_ordered_and_bounded() {
        let c = ShardCounters::new();
        for ns in [500u64, 700, 900, 1_100, 40_000] {
            c.note_batch(ns);
        }
        let s = c.snapshot();
        let lat = s.batch_latency;
        let (min, p50, mean, p95, max) = (
            lat.min.expect("recorded"),
            lat.p50.expect("recorded"),
            lat.mean.expect("recorded"),
            lat.p95.expect("recorded"),
            lat.max.expect("recorded"),
        );
        assert_eq!(min, Duration::from_nanos(500));
        assert_eq!(max, Duration::from_nanos(40_000));
        assert!(min <= p50 && p50 <= p95 && p95 <= max, "{lat:?}");
        // Exact mean: (500+700+900+1100+40000)/5 = 8640.
        assert_eq!(mean, Duration::from_nanos(8_640));
        assert_eq!(s.batches, 5);
    }

    #[test]
    fn latency_sum_saturates_instead_of_wrapping() {
        let c = ShardCounters::new();
        c.note_batch(u64::MAX);
        c.note_batch(u64::MAX);
        let lat = c.snapshot().batch_latency;
        // A wrapping sum would make the mean collapse toward zero; the
        // saturating sum pins it at the ceiling instead.
        assert!(lat.mean.expect("recorded") >= Duration::from_nanos(u64::MAX / 2));
    }

    #[test]
    fn export_publishes_per_shard_gauges() {
        let registry = stardust_telemetry::Registry::new();
        let c = ShardCounters::new();
        c.appends.fetch_add(7, Ordering::Relaxed);
        c.note_batch(1_000);
        let stats =
            RuntimeStats { shards: vec![c.snapshot()], epoch: 3, live_shards: 1, migrations: 3 };
        stats.export(&registry);
        let text = registry.render_prometheus();
        assert!(text.contains("stardust_shard_appends{shard=\"0\"} 7"), "{text}");
        assert!(text.contains("stardust_shard_batches{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("stardust_runtime_epoch 3"), "{text}");
        assert!(text.contains("stardust_runtime_live_shards 1"), "{text}");
        assert!(text.contains("stardust_runtime_migrations 3"), "{text}");
    }

    #[test]
    fn restarts_flow_through_snapshot_and_totals() {
        let c = ShardCounters::new();
        c.restarts.fetch_add(2, Ordering::Relaxed);
        let stats = RuntimeStats {
            shards: vec![c.snapshot(), ShardCounters::new().snapshot()],
            epoch: 0,
            live_shards: 2,
            migrations: 0,
        };
        assert_eq!(stats.shards[0].restarts, 2);
        assert_eq!(stats.total_restarts(), 2);
        assert!(stats.render().contains("restarts"));
    }
}
