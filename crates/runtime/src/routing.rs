//! Epoch-versioned group→worker routing for elastic rebalancing.
//!
//! The runtime partitions streams into `G` *groups* (`stream % G`), each
//! owned by exactly one worker slot at any instant. Before rebalancing
//! existed the assignment was the identity and immutable; now a
//! migration walks a group through a small state machine:
//!
//! ```text
//! Steady(from) --freeze--> Frozen{from,to} --seal--> Handed{from,to}
//!      ^                        |                          |
//!      |                        | thaw (marker push failed)|
//!      |                        v                          v
//!      +----- Steady(from)  rollback          --promote--> Steady(to), epoch+1
//! ```
//!
//! * `Frozen`: the coordinator has claimed the group and is about to
//!   queue a `MigrateOut` marker on the source. Producers and queries
//!   block ([`Routing::wait_steady`]) — admission closures evaluated
//!   under the *queue* lock refuse the message, guaranteeing nothing
//!   for the group lands behind the marker.
//! * `Handed`: the source worker processed the marker — it sealed the
//!   group (journal quiesced, events acked) and no longer owns it. The
//!   coordinator now rebuilds the group's state from its journal and
//!   queues an `Adopt` on the destination.
//! * `promote` flips the route to `Steady(to)` and bumps the epoch;
//!   parked producers wake and re-resolve.
//!
//! A worker that dies mid-protocol is healed by the supervisor: its
//! respawn set ([`Routing::respawn_set`]) is every group the slot still
//! owes state for — `Steady(me)`, `Frozen{from: me}` (the marker may
//! have been consumed without sealing and must be re-pushed), and
//! `Handed{to: me}` (adopted-but-not-yet-promoted state lives in the
//! journal, not the dead heap). A slot that fail-stops for good
//! ([`Routing::mark_worker_failed`]) poisons every route referencing it
//! so blocked producers surface an error instead of parking forever.
//!
//! Lock order: the route mutex is leaf-level *except* inside queue
//! admission closures, where the queue lock is taken first. Nothing
//! here ever takes a queue lock, so the order is acyclic.

use std::sync::{Condvar, Mutex, PoisonError};

/// Where a group's messages go, and what state any migration is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GroupRoute {
    /// Owned by one live worker; messages flow freely.
    Steady(usize),
    /// Migration claimed: marker queued (or about to be) on `from`;
    /// producers hold off.
    Frozen { from: usize, to: usize },
    /// Source sealed the group; destination adoption in flight.
    Handed { from: usize, to: usize },
    /// A worker this group depended on fail-stopped; the group is
    /// permanently unroutable.
    Failed,
}

struct RouteState {
    epoch: u64,
    routes: Vec<GroupRoute>,
    worker_failed: Vec<bool>,
    shutdown: bool,
}

/// Shared routing table; one per runtime, read on every append/query.
pub(crate) struct Routing {
    state: Mutex<RouteState>,
    changed: Condvar,
}

impl Routing {
    pub(crate) fn new(assignment: Vec<usize>, n_workers: usize) -> Self {
        Routing {
            state: Mutex::new(RouteState {
                epoch: 0,
                routes: assignment.into_iter().map(GroupRoute::Steady).collect(),
                worker_failed: vec![false; n_workers],
                shutdown: false,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RouteState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Routing epoch: bumped once per completed migration.
    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Snapshot of the current steady owner of every group; groups mid-
    /// migration report their *source* (the side whose journal is still
    /// authoritative for yet-unsealed appends).
    pub(crate) fn owners(&self) -> Vec<usize> {
        self.lock()
            .routes
            .iter()
            .map(|r| match *r {
                GroupRoute::Steady(w)
                | GroupRoute::Frozen { from: w, .. }
                | GroupRoute::Handed { from: w, .. } => w,
                GroupRoute::Failed => usize::MAX,
            })
            .collect()
    }

    /// Number of worker slots currently owning at least one group.
    pub(crate) fn live_workers(&self) -> usize {
        let state = self.lock();
        let mut live = vec![false; state.worker_failed.len()];
        for r in &state.routes {
            if let GroupRoute::Steady(w) = *r {
                live[w] = true;
            }
        }
        live.iter().filter(|&&l| l).count()
    }

    /// `true` iff group `g` is steady on worker `w` *right now*. Called
    /// from queue admission closures (queue lock already held).
    pub(crate) fn is_steady_at(&self, group: usize, worker: usize) -> bool {
        matches!(self.lock().routes[group], GroupRoute::Steady(w) if w == worker)
    }

    /// Blocks until group `g` has a steady owner and returns it.
    /// `Err(true)` means the route (or runtime) failed permanently;
    /// `Err(false)` means the runtime is shutting down.
    pub(crate) fn wait_steady(&self, group: usize) -> Result<usize, bool> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return Err(false);
            }
            match state.routes[group] {
                GroupRoute::Steady(w) => return Ok(w),
                GroupRoute::Failed => return Err(true),
                GroupRoute::Frozen { .. } | GroupRoute::Handed { .. } => {
                    state = self.changed.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Non-blocking owner lookup for the `try_*` ingestion paths.
    /// `Err(true)` means the route failed permanently (or shutdown);
    /// `Err(false)` means the group is mid-migration — transient, the
    /// caller should report backpressure rather than park.
    pub(crate) fn try_owner(&self, group: usize) -> Result<usize, bool> {
        let state = self.lock();
        if state.shutdown {
            return Err(true);
        }
        match state.routes[group] {
            GroupRoute::Steady(w) => Ok(w),
            GroupRoute::Failed => Err(true),
            GroupRoute::Frozen { .. } | GroupRoute::Handed { .. } => Err(false),
        }
    }

    /// Claims group `g` for migration to `to`; returns the source slot.
    /// Fails if the group is not steady or already lives on `to`.
    pub(crate) fn freeze(&self, group: usize, to: usize) -> Result<usize, GroupRoute> {
        let mut state = self.lock();
        match state.routes[group] {
            GroupRoute::Steady(from) if from != to && !state.worker_failed[to] => {
                state.routes[group] = GroupRoute::Frozen { from, to };
                Ok(from)
            }
            other => Err(other),
        }
    }

    /// Rolls a freeze back (the marker could not be queued).
    pub(crate) fn thaw(&self, group: usize, from: usize) {
        let mut state = self.lock();
        if let GroupRoute::Frozen { from: f, .. } = state.routes[group] {
            if f == from {
                state.routes[group] = GroupRoute::Steady(from);
            }
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Source worker `from` finished sealing group `g`. Idempotent: a
    /// respawned worker may seal a group its predecessor already sealed
    /// (re-pushed marker); the second seal is a no-op returning `false`.
    pub(crate) fn seal(&self, group: usize, from: usize) -> bool {
        let mut state = self.lock();
        match state.routes[group] {
            GroupRoute::Frozen { from: f, to } if f == from => {
                state.routes[group] = GroupRoute::Handed { from, to };
                drop(state);
                self.changed.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Blocks until group `g` leaves `Frozen` (sealed, failed, or rolled
    /// back). Returns the route observed.
    pub(crate) fn wait_handed(&self, group: usize) -> GroupRoute {
        let mut state = self.lock();
        loop {
            match state.routes[group] {
                GroupRoute::Frozen { .. } => {
                    if state.shutdown {
                        return GroupRoute::Failed;
                    }
                    state = self.changed.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                r => return r,
            }
        }
    }

    /// Completes the migration: the destination owns the group, the
    /// epoch advances, parked producers re-resolve.
    pub(crate) fn promote(&self, group: usize) {
        let mut state = self.lock();
        if let GroupRoute::Handed { to, .. } = state.routes[group] {
            state.routes[group] = GroupRoute::Steady(to);
            state.epoch += 1;
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Everything slot `slot` must rebuild when respawning, and whether
    /// that group's `MigrateOut` marker needs re-pushing (the group was
    /// frozen with this slot as source, so the dead worker may have
    /// consumed the marker without sealing).
    pub(crate) fn respawn_set(&self, slot: usize) -> Vec<(usize, bool)> {
        let state = self.lock();
        state
            .routes
            .iter()
            .enumerate()
            .filter_map(|(g, r)| match *r {
                GroupRoute::Steady(w) if w == slot => Some((g, false)),
                GroupRoute::Frozen { from, .. } if from == slot => Some((g, true)),
                GroupRoute::Handed { to, .. } if to == slot => Some((g, false)),
                _ => None,
            })
            .collect()
    }

    /// Fail-stops a single group (its durable journal wedged mid-
    /// migration): the route becomes `Failed`, other groups unaffected.
    pub(crate) fn mark_group_failed(&self, group: usize) {
        let mut state = self.lock();
        state.routes[group] = GroupRoute::Failed;
        drop(state);
        self.changed.notify_all();
    }

    /// Fail-stops a worker slot: every route referencing it becomes
    /// `Failed` and blocked producers wake into an error.
    pub(crate) fn mark_worker_failed(&self, slot: usize) {
        let mut state = self.lock();
        state.worker_failed[slot] = true;
        for r in state.routes.iter_mut() {
            let involved = match *r {
                GroupRoute::Steady(w) => w == slot,
                GroupRoute::Frozen { from, to } | GroupRoute::Handed { from, to } => {
                    from == slot || to == slot
                }
                GroupRoute::Failed => false,
            };
            if involved {
                *r = GroupRoute::Failed;
            }
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Wakes every parked waiter into the shutdown path.
    pub(crate) fn begin_shutdown(&self) {
        self.lock().shutdown = true;
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn freeze_seal_promote_bumps_epoch() {
        let r = Routing::new(vec![0, 1], 3);
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.freeze(1, 2), Ok(1));
        assert!(!r.is_steady_at(1, 1));
        assert!(r.seal(1, 1));
        assert!(!r.seal(1, 1), "second seal is a no-op");
        assert_eq!(r.wait_handed(1), GroupRoute::Handed { from: 1, to: 2 });
        r.promote(1);
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.wait_steady(1), Ok(2));
        assert_eq!(r.owners(), vec![0, 2]);
        assert_eq!(r.live_workers(), 2);
    }

    #[test]
    fn freeze_rejects_non_steady_and_self_moves() {
        let r = Routing::new(vec![0], 2);
        assert_eq!(r.freeze(0, 0), Err(GroupRoute::Steady(0)));
        assert_eq!(r.freeze(0, 1), Ok(0));
        assert!(r.freeze(0, 1).is_err(), "already frozen");
        r.thaw(0, 0);
        assert_eq!(r.wait_steady(0), Ok(0));
    }

    #[test]
    fn wait_steady_parks_across_a_migration() {
        let r = Arc::new(Routing::new(vec![0], 2));
        r.freeze(0, 1).unwrap();
        let r2 = Arc::clone(&r);
        let waiter = std::thread::spawn(move || r2.wait_steady(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(r.seal(0, 0));
        r.promote(0);
        assert_eq!(waiter.join().unwrap(), Ok(1));
    }

    #[test]
    fn respawn_set_covers_all_owed_states() {
        let r = Routing::new(vec![0, 0, 1, 1], 3);
        r.freeze(1, 2).unwrap(); // Frozen{from: 0}
        r.freeze(2, 0).unwrap(); // Frozen{from: 1}
        assert!(r.seal(2, 1)); // Handed{to: 0}
        let set = r.respawn_set(0);
        assert_eq!(set, vec![(0, false), (1, true), (2, false)]);
        assert_eq!(r.respawn_set(2), vec![]);
    }

    #[test]
    fn failed_worker_poisons_routes_and_wakes_waiters() {
        let r = Arc::new(Routing::new(vec![0, 1], 2));
        r.freeze(0, 1).unwrap();
        let r2 = Arc::clone(&r);
        let waiter = std::thread::spawn(move || r2.wait_steady(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.mark_worker_failed(1);
        assert_eq!(waiter.join().unwrap(), Err(true));
        assert_eq!(r.wait_handed(0), GroupRoute::Failed);
        // Group 1 was Steady(1) on the failed worker: also poisoned.
        assert_eq!(r.wait_steady(1), Err(true));
    }

    #[test]
    fn shutdown_wakes_waiters_with_non_failure() {
        let r = Arc::new(Routing::new(vec![0], 2));
        r.freeze(0, 1).unwrap();
        let r2 = Arc::clone(&r);
        let waiter = std::thread::spawn(move || r2.wait_steady(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        r.begin_shutdown();
        assert_eq!(waiter.join().unwrap(), Err(false));
    }
}
