//! A cloneable recipe for building [`UnifiedMonitor`]s.
//!
//! The runtime constructs one monitor per shard, each over that shard's
//! slice of streams. [`UnifiedMonitor`] itself is deliberately not
//! `Clone` (it owns large per-stream state), so the sharding layer needs
//! a value that *describes* a monitor — transforms, windows, registered
//! trend patterns — and can be replayed as many times as there are
//! shards. [`MonitorSpec`] is that value.

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::transform::TransformKind;
use stardust_core::unified::UnifiedMonitor;

use crate::RuntimeError;

/// Aggregate (burst / volatility) monitoring parameters.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// SUM for bursts, SPREAD for volatility.
    pub transform: TransformKind,
    /// Monitored windows with their alarm thresholds.
    pub windows: Vec<WindowSpec>,
    /// Box capacity `c` (space/accuracy knob).
    pub box_capacity: usize,
}

/// One trend pattern to register on every shard's monitor.
#[derive(Debug, Clone)]
pub struct TrendPattern {
    /// The raw pattern sequence.
    pub sequence: Vec<f64>,
    /// Normalized match radius.
    pub radius: f64,
}

/// Continuous trend-monitoring parameters.
#[derive(Debug, Clone)]
pub struct TrendSpec {
    /// DWT feature dimensionality `f`.
    pub coeffs: usize,
    /// Box capacity `c`.
    pub box_capacity: usize,
    /// Patterns registered at build time. Registration order is part of
    /// the spec: pattern ids are assigned sequentially and must agree
    /// across shards.
    pub patterns: Vec<TrendPattern>,
}

/// Correlation-monitoring parameters.
#[derive(Debug, Clone)]
pub struct CorrelationSpec {
    /// Feature dimensionality `f`.
    pub coeffs: usize,
    /// z-norm distance threshold.
    pub radius: f64,
}

/// A cloneable description of a [`UnifiedMonitor`]: everything
/// [`stardust_core::unified::Builder`] consumes, plus the trend patterns
/// to register. `build` can be called repeatedly — once per shard —
/// with different stream counts.
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Base window `W`.
    pub base_window: usize,
    /// Number of resolution levels.
    pub levels: usize,
    /// Value-range bound `R_max` (pattern normalization).
    pub r_max: f64,
    /// Aggregate monitoring, if enabled.
    pub aggregate: Option<AggregateSpec>,
    /// Trend monitoring, if enabled.
    pub trend: Option<TrendSpec>,
    /// Correlation monitoring, if enabled.
    pub correlation: Option<CorrelationSpec>,
    /// Correlation sketch block granularity override (values per block).
    /// `None` uses the monitor default (`base_window`). Must divide the
    /// correlation window `W * 2^(levels-1)`.
    pub sketch_block: Option<usize>,
}

impl MonitorSpec {
    /// An empty spec over base window `W` and `levels` resolution
    /// levels; enable at least one query class before building.
    pub fn new(base_window: usize, levels: usize, r_max: f64) -> Self {
        MonitorSpec {
            base_window,
            levels,
            r_max,
            aggregate: None,
            trend: None,
            correlation: None,
            sketch_block: None,
        }
    }

    /// Enables aggregate monitoring.
    pub fn with_aggregates(mut self, spec: AggregateSpec) -> Self {
        self.aggregate = Some(spec);
        self
    }

    /// Enables trend monitoring.
    pub fn with_trends(mut self, spec: TrendSpec) -> Self {
        self.trend = Some(spec);
        self
    }

    /// Enables correlation monitoring.
    pub fn with_correlations(mut self, spec: CorrelationSpec) -> Self {
        self.correlation = Some(spec);
        self
    }

    /// Overrides the correlation sketch's block granularity.
    pub fn with_sketch_block(mut self, block: usize) -> Self {
        self.sketch_block = Some(block);
        self
    }

    /// Whether any query class is enabled.
    pub fn any_class(&self) -> bool {
        self.aggregate.is_some() || self.trend.is_some() || self.correlation.is_some()
    }

    /// Builds a monitor over `n_streams` streams.
    ///
    /// Correlation is kept even on one-stream slices: a lone stream has
    /// no same-shard pairs, but its sliding-window sketch and raw
    /// windows still feed the collector's cross-shard correlation path
    /// (see [`crate::ShardedRuntime::correlated_pairs`]). Returns
    /// `Ok(None)` when no enabled class is constructible for this slice
    /// — the caller runs such a shard as a counting pass-through.
    ///
    /// # Errors
    /// Fails when no class is enabled at all, or a trend pattern is
    /// rejected by the monitor.
    pub fn build(&self, n_streams: usize) -> Result<Option<UnifiedMonitor>, RuntimeError> {
        if !self.any_class() {
            return Err(RuntimeError::NoQueryClass);
        }
        if n_streams == 0 {
            return Ok(None);
        }
        let mut builder =
            UnifiedMonitor::builder(self.base_window, self.levels, n_streams, self.r_max);
        if let Some(agg) = &self.aggregate {
            builder = builder.aggregates(agg.transform, agg.windows.clone(), agg.box_capacity);
        }
        if let Some(trend) = &self.trend {
            builder = builder.trends(trend.coeffs, trend.box_capacity);
        }
        if let Some(corr) = &self.correlation {
            builder = builder.correlations(corr.coeffs, corr.radius);
            if let Some(block) = self.sketch_block {
                builder = builder.correlation_sketch_block(block);
            }
        }
        let mut monitor = builder.build();
        if let Some(trend) = &self.trend {
            for p in &trend.patterns {
                monitor
                    .register_trend(p.sequence.clone(), p.radius)
                    .map_err(RuntimeError::Pattern)?;
            }
        }
        Ok(Some(monitor))
    }
}
