//! Per-shard crash recovery: write-ahead journal, periodic monitor
//! snapshots, and deterministic suffix replay.
//!
//! Every shard owns a [`ShardRecovery`] that outlives any one worker
//! thread. The worker journals each batch *before* applying it, counts
//! every event it delivers, and periodically stores a full
//! [`UnifiedMonitor::snapshot`], truncating the journal. When the
//! supervisor finds the worker dead it rebuilds the monitor from the
//! last snapshot, replays the journaled suffix — monitor output is a
//! pure function of the append sequence, so the replay regenerates
//! exactly the events the dead worker produced — and suppresses the
//! first `emitted − emitted_at_snapshot` of them, which were already
//! delivered. The combination yields exactly-once event delivery across
//! worker crashes: nothing lost (the journal is written ahead of
//! processing), nothing duplicated (the suppression count is exact).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use stardust_core::stream::StreamId;
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::shard::remap_event;
use crate::spec::MonitorSpec;
use crate::stats::ShardCounters;

/// The journaled, not-yet-snapshotted tail of one shard's input.
struct Journal {
    /// Last stored monitor snapshot (`None` until the first cadence
    /// boundary, or for shards whose spec builds no monitor).
    snapshot: Option<Vec<u8>>,
    /// Appends covered by `snapshot`.
    snapshot_appends: u64,
    /// Value of `emitted` when `snapshot` was taken.
    emitted_at_snapshot: u64,
    /// Appends journaled after `snapshot`, in processing order
    /// (local stream ids). Written ahead of processing.
    suffix: Vec<(StreamId, f64)>,
}

/// One shard's recovery state, shared by the worker (journaling) and
/// the supervisor (rebuilding). The worker is the only writer while it
/// lives; the supervisor only touches this after the worker died, so
/// the mutex is never contended.
pub(crate) struct ShardRecovery {
    journal: Mutex<Journal>,
    /// Events delivered to the collector over the shard's lifetime,
    /// bumped once per successful send — exact even mid-batch.
    emitted: AtomicU64,
    /// Times the supervisor restored this shard.
    restarts: AtomicU64,
}

impl ShardRecovery {
    pub(crate) fn new() -> Self {
        ShardRecovery {
            journal: Mutex::new(Journal {
                snapshot: None,
                snapshot_appends: 0,
                emitted_at_snapshot: 0,
                suffix: Vec::new(),
            }),
            emitted: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        }
    }

    /// Write-ahead step: records a batch before the worker applies it.
    pub(crate) fn journal_batch(&self, items: &[(StreamId, f64)]) {
        self.journal.lock().expect("journal poisoned").suffix.extend_from_slice(items);
    }

    /// One event delivered to the collector.
    pub(crate) fn note_emitted(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends journaled since the last snapshot.
    pub(crate) fn suffix_len(&self) -> usize {
        self.journal.lock().expect("journal poisoned").suffix.len()
    }

    /// Stores a snapshot (taken *after* the worker fully applied every
    /// journaled append) and truncates the journal to it.
    pub(crate) fn record_snapshot(&self, snapshot: Option<Vec<u8>>) {
        let mut journal = self.journal.lock().expect("journal poisoned");
        journal.snapshot_appends += journal.suffix.len() as u64;
        journal.suffix.clear();
        journal.emitted_at_snapshot = self.emitted.load(Ordering::Relaxed);
        journal.snapshot = snapshot;
    }

    /// Times this shard was restored.
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Supervisor path: rebuilds the monitor of a dead shard and
    /// replays the journaled suffix, delivering only the events the
    /// dead worker had not yet sent. Returns the warm monitor and the
    /// number of appends it has processed (the restored worker's fault
    /// clock).
    pub(crate) fn rebuild(
        &self,
        spec: &MonitorSpec,
        n_local: usize,
        shard: usize,
        n_shards: usize,
        events: &Sender<Event>,
        counters: &ShardCounters,
    ) -> (Option<UnifiedMonitor>, u64) {
        let journal = self.journal.lock().expect("journal poisoned");
        let mut monitor = match &journal.snapshot {
            Some(bytes) => {
                Some(UnifiedMonitor::restore(bytes).expect("self-written snapshot decodes"))
            }
            // No snapshot yet: rebuild from scratch and replay the full
            // journal (which then spans the shard's whole history).
            None => spec.build(n_local).expect("spec validated at launch"),
        };
        let already = self.emitted.load(Ordering::Relaxed) - journal.emitted_at_snapshot;
        let mut regenerated = 0u64;
        if let Some(monitor) = monitor.as_mut() {
            let mut buf = Vec::new();
            for &(local, value) in &journal.suffix {
                buf.clear();
                monitor.append_into(local, value, &mut buf);
                for ev in buf.drain(..) {
                    regenerated += 1;
                    if regenerated > already {
                        let _ = events.send(remap_event(shard, n_shards, ev));
                        self.emitted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        debug_assert!(
            regenerated >= already,
            "replay regenerated {regenerated} events but {already} were already delivered"
        );
        let processed = journal.snapshot_appends + journal.suffix.len() as u64;
        // The dead worker updated these per batch; make them exact again.
        counters.appends.store(processed, Ordering::Relaxed);
        counters.events.store(self.emitted.load(Ordering::Relaxed), Ordering::Relaxed);
        counters.restarts.fetch_add(1, Ordering::Relaxed);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        (monitor, processed)
    }
}
