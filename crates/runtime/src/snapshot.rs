//! Per-shard crash recovery: write-ahead journal, periodic monitor
//! snapshots, and deterministic suffix replay.
//!
//! Every shard owns a [`ShardRecovery`] that outlives any one worker
//! thread. The worker journals each batch *before* applying it, counts
//! every event it delivers, and periodically stores a full
//! [`UnifiedMonitor::snapshot`], truncating the journal. When the
//! supervisor finds the worker dead it rebuilds the monitor from the
//! last snapshot, replays the journaled suffix — monitor output is a
//! pure function of the append sequence, so the replay regenerates
//! exactly the events the dead worker produced — and suppresses the
//! first `emitted − emitted_at_snapshot` of them, which were already
//! delivered. The combination yields exactly-once event delivery across
//! worker crashes: nothing lost (the journal is written ahead of
//! processing), nothing duplicated (the suppression count is exact).
//!
//! With [`crate::PersistConfig`] the journal additionally owns a
//! [`ShardDisk`]: every batch is appended to the on-disk WAL *before*
//! the in-memory suffix accepts it, snapshots rotate the on-disk
//! generation, and delivered-event counts are acked to the WAL so a
//! process-level crash recovers with the same suppression arithmetic.
//! A disk that can no longer be appended to (torn write, failed rename)
//! wedges the shard: accepting appends the log cannot journal would
//! break the durability contract, so the shard fails stop instead.
//!
//! Lock poisoning is survived, not propagated: a worker that panics
//! mid-batch (the fault injector does this on purpose) may poison the
//! journal mutex, but every structure it guards is kept consistent at
//! each write, so the supervisor recovers the inner value with
//! [`PoisonError::into_inner`] rather than cascading the panic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Mutex, PoisonError};

use stardust_core::stream::StreamId;
use stardust_core::unified::{Event, UnifiedMonitor};

use crate::persist::ShardDisk;
use crate::shard::{publish_sketches_if_due, remap_event, SketchBoard};
use crate::spec::MonitorSpec;
use crate::telemetry::RuntimeTelemetry;

/// The journaled, not-yet-snapshotted tail of one shard's input.
struct Journal {
    /// Last stored monitor snapshot (`None` until the first cadence
    /// boundary, or for shards whose spec builds no monitor).
    snapshot: Option<Vec<u8>>,
    /// Appends covered by `snapshot`.
    snapshot_appends: u64,
    /// Value of `emitted` when `snapshot` was taken.
    emitted_at_snapshot: u64,
    /// Appends journaled after `snapshot`, in processing order
    /// (local stream ids). Written ahead of processing.
    suffix: Vec<(StreamId, f64)>,
    /// Durable mirror of this journal (absent without persistence).
    disk: Option<ShardDisk>,
}

/// One shard's recovery state, shared by the worker (journaling) and
/// the supervisor (rebuilding). The worker is the only writer while it
/// lives; the supervisor only touches this after the worker died, so
/// the mutex is never contended.
pub(crate) struct ShardRecovery {
    journal: Mutex<Journal>,
    /// Events delivered to the collector over the shard's lifetime,
    /// bumped once per successful send — exact even mid-batch.
    emitted: AtomicU64,
}

impl ShardRecovery {
    pub(crate) fn new(disk: Option<ShardDisk>) -> Self {
        ShardRecovery {
            journal: Mutex::new(Journal {
                snapshot: None,
                snapshot_appends: 0,
                emitted_at_snapshot: 0,
                suffix: Vec::new(),
                disk,
            }),
            emitted: AtomicU64::new(0),
        }
    }

    /// Warm constructor for `open()`: the journal starts at the state
    /// the open-time rotation just made durable — `snapshot` covering
    /// `snapshot_appends` appends with `emitted` events delivered, and
    /// an empty suffix.
    pub(crate) fn resumed(
        snapshot: Option<Vec<u8>>,
        snapshot_appends: u64,
        emitted: u64,
        disk: Option<ShardDisk>,
    ) -> Self {
        ShardRecovery {
            journal: Mutex::new(Journal {
                snapshot,
                snapshot_appends,
                emitted_at_snapshot: emitted,
                suffix: Vec::new(),
                disk,
            }),
            emitted: AtomicU64::new(emitted),
        }
    }

    /// Group-commit write-ahead step: journals a run of batches before
    /// the worker applies any of them — on disk first as one coalesced
    /// WAL write with a single fsync covering the whole group (see
    /// [`ShardDisk::append_group`]), then mirrored into the in-memory
    /// suffix in order. Per-batch ordering is preserved: the on-disk
    /// bytes are identical to per-batch journaling.
    ///
    /// # Panics
    /// Panics when the durable WAL cannot accept the group (torn write
    /// or wedged handle). The worker thread dies *before* applying
    /// anything from the group, the supervisor sees the wedge and
    /// closes the shard, and producers observe `Disconnected` —
    /// fail-stop rather than divergence between the monitor and its
    /// log. A tear mid-group leaves a clean prefix of complete records
    /// on disk; recovery replays exactly that journaled prefix.
    pub(crate) fn journal_group<'a, I>(&self, batches: I)
    where
        I: Iterator<Item = &'a [(StreamId, f64)]> + Clone,
    {
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        let journal = &mut *journal;
        if let Some(disk) = journal.disk.as_mut() {
            if let Err(e) = disk.append_group(batches.clone()) {
                panic!("shard WAL group append failed; failing stop: {e}");
            }
        }
        for items in batches {
            journal.suffix.extend_from_slice(items);
        }
    }

    /// `n` events delivered to the collector in one grouped send.
    pub(crate) fn note_emitted_n(&self, n: u64) {
        self.emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Acks the cumulative delivered-event count to the durable WAL
    /// (no-op without persistence). Called after a batch's events were
    /// handed to the collector, so a process-level recovery can
    /// suppress exactly the events that were already out.
    pub(crate) fn ack_emitted(&self) {
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(disk) = journal.disk.as_mut() {
            disk.append_ack(self.emitted.load(Ordering::Relaxed));
        }
    }

    /// Appends journaled since the last snapshot.
    pub(crate) fn suffix_len(&self) -> usize {
        self.journal.lock().unwrap_or_else(PoisonError::into_inner).suffix.len()
    }

    /// Stores a snapshot (taken *after* the worker fully applied every
    /// journaled append) and truncates the in-memory journal to it.
    /// With persistence, also rotates the on-disk generation; an
    /// aborted rotation (injected fsync failure) keeps the on-disk
    /// chain at the previous generation, which stays self-consistent
    /// because the WAL segment keeps growing.
    pub(crate) fn record_snapshot(&self, snapshot: Option<Vec<u8>>) {
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        journal.snapshot_appends += journal.suffix.len() as u64;
        journal.suffix.clear();
        journal.emitted_at_snapshot = self.emitted.load(Ordering::Relaxed);
        journal.snapshot = snapshot;
        let appends = journal.snapshot_appends;
        let emitted = journal.emitted_at_snapshot;
        let journal = &mut *journal;
        if let Some(disk) = journal.disk.as_mut() {
            // Rename/create failures wedge the handle; the next
            // journal_group fails stop. The snapshot itself stays
            // consistent in memory either way.
            let _ = disk.rotate(appends, emitted, journal.snapshot.as_deref());
        }
    }

    /// Events delivered to the collector over this group's lifetime.
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Rebuilds the monitor of a dead-or-migrating group and replays
    /// the journaled suffix, delivering only the events the previous
    /// owner had not yet sent (one grouped send) and firing the
    /// sketch-exchange cadence for every boundary the replay crosses —
    /// batches a dead worker drained into a commit group but never
    /// applied exist only in the journal, so their publications must
    /// happen here. Returns the warm monitor and the number of appends
    /// it has processed (the new owner's fault clock) — or `None` when
    /// the group's durable WAL is wedged, in which case the group must
    /// stay down: an in-memory rebuild would accept appends the disk
    /// can no longer journal.
    ///
    /// Pure with respect to shard accounting: callers (the supervisor
    /// respawning a worker, the migration coordinator handing a sealed
    /// group to its destination) apply their own counter/restart
    /// bookkeeping, because the same rebuild serves both paths.
    /// Safe to run concurrently with itself (journal mutex): a sealed
    /// group being adopted may race its destination's respawn — both
    /// rebuilds resend the same (empty, post-seal) tail.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rebuild_state(
        &self,
        spec: &MonitorSpec,
        n_local: usize,
        shard: usize,
        n_shards: usize,
        events: &Sender<Vec<Event>>,
        sketches: &SketchBoard,
        sketch_cadence: u64,
        telemetry: &RuntimeTelemetry,
    ) -> Option<(Option<UnifiedMonitor>, u64)> {
        let journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if journal.disk.as_ref().is_some_and(|d| d.wedged) {
            return None;
        }
        let mut monitor = match &journal.snapshot {
            Some(bytes) => {
                Some(UnifiedMonitor::restore(bytes).expect("self-written snapshot decodes"))
            }
            // No snapshot yet: rebuild from scratch and replay the full
            // journal (which then spans the shard's whole history).
            None => spec.build(n_local).expect("spec validated at launch"),
        };
        let already = self.emitted.load(Ordering::Relaxed) - journal.emitted_at_snapshot;
        let mut regenerated = 0u64;
        if let Some(monitor) = monitor.as_mut() {
            let mut buf = Vec::new();
            let mut resend = Vec::new();
            // Like a respawned worker's, the replay's ship frontier
            // starts at zero: the first crossed boundary re-publishes
            // state the board may already hold (absorbed idempotently).
            let mut last_shipped = 0u64;
            for &(local, value) in &journal.suffix {
                buf.clear();
                monitor.append_into(local, value, &mut buf);
                for ev in buf.drain(..) {
                    regenerated += 1;
                    if regenerated > already {
                        resend.push(remap_event(shard, n_shards, ev));
                    }
                }
                publish_sketches_if_due(
                    Some(monitor),
                    shard,
                    n_shards,
                    sketches,
                    sketch_cadence,
                    &mut last_shipped,
                    telemetry,
                );
            }
            if !resend.is_empty() {
                self.note_emitted_n(resend.len() as u64);
                let _ = events.send(resend);
            }
        }
        debug_assert!(
            regenerated >= already,
            "replay regenerated {regenerated} events but {already} were already delivered"
        );
        let processed = journal.snapshot_appends + journal.suffix.len() as u64;
        drop(journal);
        // The replay delivered events the dead worker had not acked.
        self.ack_emitted();
        Some((monitor, processed))
    }
}
