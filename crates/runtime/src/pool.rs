//! Deterministic intra-query fan-out.
//!
//! Collector-side query phases (sketch pruning, candidate verification)
//! iterate over an item list whose per-item work is independent. This
//! module splits such a list into **contiguous runs**, maps each run on its
//! own scoped thread, and concatenates the per-run outputs in run order —
//! so the combined output is *exactly* the serial `items.iter().map(work)`
//! order at every thread count. Nothing about the result (values, order,
//! float bits) depends on scheduling; only wall-clock time does.
//!
//! The same argument carries to the R\*-tree's parallel range queries
//! (`stardust_index::tree`): determinism comes from partitioning the work
//! *statically* and merging *positionally*, never from synchronization
//! order. Workers that die mid-query surface as a panic on `join`, which
//! propagates to the caller rather than silently dropping a run.

/// Maps `work` over `items` using at most `threads` scoped workers.
///
/// The output equals `items.iter().map(work).collect()` — element for
/// element, in order — for every `threads` value. `threads <= 1`, an empty
/// slice, or a single item short-circuits to the serial map with no thread
/// overhead.
///
/// # Panics
/// Propagates a panic from `work` (the querying thread observes the same
/// panic it would have hit serially).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, work: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(work).collect();
    }
    let runs = threads.min(items.len());
    let run_len = items.len().div_ceil(runs);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(runs);
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(run_len)
            .map(|run| scope.spawn(move || run.iter().map(work).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("intra-query worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Resolves a configured thread-count knob: `0` means one per available
/// CPU, anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let work = |x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15) ^ (x >> 3);
        let serial: Vec<u64> = items.iter().map(work).collect();
        for threads in [0usize, 1, 2, 3, 4, 7, 96, 97, 200] {
            assert_eq!(parallel_map(&items, threads.max(1), work), serial, "threads={threads}");
        }
    }

    #[test]
    fn float_accumulations_are_bit_identical() {
        // Per-item work that is itself an ordered reduction: the fan-out
        // must not perturb a single bit of any item's result.
        let items: Vec<Vec<f64>> = (0..31)
            .map(|i| (0..64).map(|j| ((i * 64 + j) as f64 * 0.37).sin() * 1e3).collect())
            .collect();
        let work = |v: &Vec<f64>| v.iter().fold(0.0f64, |acc, x| acc + x * x);
        let serial: Vec<u64> = items.iter().map(|v| work(v).to_bits()).collect();
        for threads in [2usize, 3, 5, 31] {
            let par: Vec<u64> =
                parallel_map(&items, threads, work).iter().map(|x| x.to_bits()).collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(parallel_map(&[42], 8, |x| *x * 2), vec![84]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    #[should_panic(expected = "intra-query worker panicked")]
    fn worker_death_propagates() {
        // A worker dying mid-query must surface, not silently drop a run.
        let items: Vec<u32> = (0..16).collect();
        let _ = parallel_map(&items, 4, |x| {
            assert!(*x != 9, "injected worker fault");
            *x
        });
    }
}
