//! stardust-runtime — a sharded, multi-threaded ingestion & query
//! runtime over [`stardust_core`]'s `UnifiedMonitor`.
//!
//! The core crate implements the paper's single-threaded monitor; this
//! crate scales it out by **partitioning streams across worker shards**.
//! Stream `g` (of `M`) lives on shard `g mod S` and is monitored there
//! as local stream `g div S`; each shard owns a private monitor, so no
//! locks guard monitor state and no summaries are shared. Cross-shard
//! correlated pairs are still covered: shards ship compact
//! sliding-window sketches to the collector, which prunes distant pairs
//! (provably no false dismissals) and verifies the rest exactly — see
//! [`ShardedRuntime::correlated_pairs`].
//!
//! ```text
//!            Batch { (stream, value)… }
//!                      │ split by g mod S
//!        ┌─────────────┼─────────────┐
//!        ▼             ▼             ▼
//!   [bounded q]   [bounded q]   [bounded q]    ← backpressure here
//!        │             │             │
//!   ┌────▼────┐   ┌────▼────┐   ┌────▼────┐
//!   │ shard 0 │   │ shard 1 │   │ shard 2 │    one thread + one
//!   │ monitor │   │ monitor │   │ monitor │    UnifiedMonitor each
//!   └────┬────┘   └────┬────┘   └────┬────┘
//!        └─────────────┼─────────────┘
//!                      ▼
//!             collector (Events)  →  drain_events() / shutdown()
//! ```
//!
//! Queries ride the same bounded queues as data (per-shard sequential
//! consistency) and are answered by scatter-gather with deterministic
//! merge order. See [`ShardedRuntime`] for the exact semantics and the
//! backpressure contract.
//!
//! **Fault tolerance.** Each shard's queue outlives its worker thread.
//! With [`RuntimeConfig::recovery`] enabled (the default), batches are
//! journaled ahead of processing, monitors are snapshotted on a
//! cadence, and a supervisor thread restores any crashed worker from
//! its shard's last snapshot — replaying the journaled suffix with
//! exactly-once event delivery. [`FaultPlan`] injects deterministic
//! crashes, stalls, and slow drains for testing this machinery.
//!
//! # Example
//!
//! ```
//! use stardust_core::query::aggregate::WindowSpec;
//! use stardust_core::transform::TransformKind;
//! use stardust_runtime::{
//!     AggregateSpec, Batch, MonitorSpec, RuntimeConfig, ShardedRuntime,
//! };
//!
//! let spec = MonitorSpec::new(8, 3, 10.0).with_aggregates(AggregateSpec {
//!     transform: TransformKind::Sum,
//!     windows: vec![WindowSpec { window: 16, threshold: 12.0 }],
//!     box_capacity: 4,
//! });
//! let mut rt = ShardedRuntime::launch(
//!     &spec,
//!     4,
//!     RuntimeConfig { shards: 2, queue_capacity: 8, ..RuntimeConfig::default() },
//! )
//! .unwrap();
//!
//! let batch: Batch = (0..4u32).map(|s| (s, 1.0)).collect();
//! for _ in 0..32 {
//!     rt.submit_blocking(&batch).unwrap();
//! }
//! let report = rt.shutdown();
//! assert_eq!(report.stats.total_appends(), 128);
//! ```

use stardust_core::error::QueryError;
use stardust_core::stream::StreamId;

mod fault;
mod persist;
pub mod pool;
mod queue;
mod routing;
mod runtime;
mod shard;
mod snapshot;
mod spec;
mod stats;
mod telemetry;

pub use fault::{DiskFault, DiskFaultKind, DiskFile, Fault, FaultKind, FaultPlan, MigrationStep};
pub use persist::crc32::crc32;
pub use persist::{PersistConfig, RecoveryError, RecoveryReport, ShardRecoveryReport, SyncPolicy};
pub use runtime::{
    sort_events, Batch, PartialSubmit, QueueFull, RebalanceAction, RecoveryPolicy, RuntimeConfig,
    ShardedRuntime, ShutdownReport,
};
pub use shard::ClassStats;
pub use spec::{AggregateSpec, CorrelationSpec, MonitorSpec, TrendPattern, TrendSpec};
pub use stats::{CrossCorrStats, LatencyStats, RuntimeStats, ShardStats};

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// The spec enables no query class; there is nothing to monitor.
    NoQueryClass,
    /// `launch` was asked to monitor zero streams.
    NoStreams,
    /// A trend pattern in the spec was rejected by the monitor.
    Pattern(QueryError),
    /// A stream id at or beyond the configured stream count.
    UnknownStream {
        /// The offending id.
        stream: StreamId,
        /// The runtime's configured stream count.
        n_streams: usize,
    },
    /// A bounded shard queue was full (non-blocking paths only).
    Backpressure(QueueFull),
    /// A worker thread exited unexpectedly (it panicked or its channel
    /// closed); the runtime should be shut down.
    Disconnected,
    /// The OS refused to spawn a worker thread.
    Spawn(std::io::Error),
    /// `open()` could not recover the persistence directory.
    Recovery(RecoveryError),
    /// The supervisor gave up restarting a shard that kept dying faster
    /// than [`RuntimeConfig::max_restarts_in_window`] allows; the shard
    /// is failed for good.
    RespawnStorm {
        /// The fail-stopped worker slot.
        shard: usize,
        /// Restarts observed inside the window when the cap tripped.
        restarts: u32,
    },
    /// Shard split/merge needs the recovery journal as its handoff
    /// mechanism; the runtime was launched with `recovery: None`.
    MigrationUnsupported,
    /// A rebalancing call was given arguments the current layout cannot
    /// satisfy (out-of-range slot or group, a group not owned by the
    /// source, or a group already mid-migration).
    Rebalance {
        /// What was wrong.
        detail: &'static str,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NoQueryClass => f.write_str("monitor spec enables no query class"),
            RuntimeError::NoStreams => f.write_str("cannot launch a runtime over zero streams"),
            RuntimeError::Pattern(e) => write!(f, "trend pattern rejected: {e}"),
            RuntimeError::UnknownStream { stream, n_streams } => {
                write!(f, "stream {stream} out of range (runtime monitors {n_streams} streams)")
            }
            RuntimeError::Backpressure(_) => f.write_str("shard queue full (backpressure)"),
            RuntimeError::Disconnected => f.write_str("a worker thread is gone"),
            RuntimeError::Spawn(e) => write!(f, "failed to spawn worker thread: {e}"),
            RuntimeError::Recovery(e) => write!(f, "persistence recovery failed: {e}"),
            RuntimeError::RespawnStorm { shard, restarts } => write!(
                f,
                "shard {shard} fail-stopped after {restarts} restarts inside the storm window"
            ),
            RuntimeError::MigrationUnsupported => {
                f.write_str("shard split/merge requires recovery journaling (recovery: None)")
            }
            RuntimeError::Rebalance { detail } => write!(f, "rebalance rejected: {detail}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Pattern(e) => Some(e),
            RuntimeError::Backpressure(e) => Some(e),
            RuntimeError::Spawn(e) => Some(e),
            RuntimeError::Recovery(e) => Some(e),
            _ => None,
        }
    }
}
