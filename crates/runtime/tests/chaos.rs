//! Crash recovery must not change what the framework detects.
//!
//! Each test kills shard workers mid-ingest through a seeded
//! [`FaultPlan`] and checks that the supervisor-recovered run emits an
//! event set *bit-identical* to an unfaulted run: nothing lost from the
//! queues, nothing delivered twice by the replay, every monitor resumed
//! from its snapshot exactly where it died.

use std::sync::Arc;
use std::time::Duration;

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_core::unified::Event;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{
    sort_events, AggregateSpec, Batch, CorrelationSpec, FaultPlan, MonitorSpec, RecoveryPolicy,
    RuntimeConfig, ShardedRuntime, ShutdownReport, TrendPattern, TrendSpec,
};

const BASE_WINDOW: usize = 16;
const LEVELS: usize = 3;
const N_STREAMS: usize = 6;
const N_VALUES: usize = 512;

fn workload(seed: u64, n_streams: usize) -> (Vec<Vec<f64>>, f64) {
    let streams = random_walk_streams(seed, n_streams, N_VALUES);
    let r_max = observed_r_max(&streams);
    (streams, r_max)
}

/// A SUM threshold low enough that some windows of the data cross it.
fn crossing_threshold(streams: &[Vec<f64>], window: usize) -> f64 {
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    max_sum * 0.98
}

/// The aggregate + trend spec the determinism suite proves equivalent
/// to a single monitor; here it runs under injected crashes.
fn agg_trend_spec(streams: &[Vec<f64>], r_max: f64) -> MonitorSpec {
    let threshold = crossing_threshold(streams, 2 * BASE_WINDOW);
    let pattern: Vec<f64> = streams[2][100..100 + 2 * BASE_WINDOW].to_vec();
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window: 2 * BASE_WINDOW, threshold }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        })
}

/// Replays `streams` through a single-threaded monitor.
fn single_threaded_events(spec: &MonitorSpec, streams: &[Vec<f64>]) -> Vec<Event> {
    let mut monitor = spec.build(streams.len()).unwrap().unwrap();
    let mut events = Vec::new();
    for t in 0..N_VALUES {
        for (s, stream) in streams.iter().enumerate() {
            events.extend(monitor.append(s as StreamId, stream[t]));
        }
    }
    events
}

/// Replays `streams` through a sharded runtime under `faults` (one
/// batch per time step), returning the shutdown report.
fn faulted_run(
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    shards: usize,
    faults: Option<Arc<FaultPlan>>,
    snapshot_every: u64,
) -> ShutdownReport {
    let rt = ShardedRuntime::launch(
        spec,
        streams.len(),
        RuntimeConfig {
            shards,
            queue_capacity: 32,
            recovery: Some(RecoveryPolicy { snapshot_every }),
            fault_plan: faults,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let report = rt.shutdown();
    assert_eq!(
        report.stats.total_appends(),
        (streams.len() * N_VALUES) as u64,
        "every submitted value must be applied exactly once"
    );
    report
}

/// Tentpole invariant: kill every shard once mid-ingest; the recovered
/// event set is bit-identical to an unfaulted single-threaded monitor.
#[test]
fn killed_shards_recover_to_the_exact_event_set() {
    let (streams, r_max) = workload(42, N_STREAMS);
    let spec = agg_trend_spec(&streams, r_max);

    let mut reference = single_threaded_events(&spec, &streams);
    assert!(reference.iter().any(|e| matches!(e, Event::Aggregate { .. })));
    assert!(reference.iter().any(|e| matches!(e, Event::Trend(_))));
    sort_events(&mut reference);

    for shards in [2usize, 4] {
        // Every shard processes at least 512 appends here; [100, 400)
        // keeps each kill strictly mid-ingest so crashes land while
        // queues are hot, past at least one snapshot boundary.
        let plan = Arc::new(FaultPlan::seeded_kills(0xC0FFEE + shards as u64, shards, 100, 400));
        let report = faulted_run(&spec, &streams, shards, Some(Arc::clone(&plan)), 64);
        assert_eq!(plan.fired_count(), shards, "every scheduled kill must fire");
        assert_eq!(
            report.stats.total_restarts(),
            shards as u64,
            "each killed shard must be restored exactly once"
        );
        let mut recovered = report.events;
        sort_events(&mut recovered);
        assert_eq!(recovered, reference, "recovered event set diverged at {shards} shards");
    }
}

/// With `snapshot_every: 0` no snapshot is ever taken: recovery falls
/// back to replaying the shard's entire journaled history. Same
/// invariant, different code path.
#[test]
fn full_journal_replay_recovers_without_snapshots() {
    let (streams, r_max) = workload(42, N_STREAMS);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    let plan = Arc::new(FaultPlan::new().kill(0, 300).kill(1, 700));
    let report = faulted_run(&spec, &streams, 2, Some(Arc::clone(&plan)), 0);
    assert_eq!(plan.fired_count(), 2);
    assert_eq!(report.stats.total_restarts(), 2);
    let mut recovered = report.events;
    sort_events(&mut recovered);
    assert_eq!(recovered, reference);
}

/// Correlation state (R*-tree + insertion log) must also survive a
/// crash: a faulted run emits exactly what an unfaulted run with the
/// same shard count does, and post-crash queries still answer.
#[test]
fn correlation_state_survives_worker_crashes() {
    let (streams, r_max) = workload(42, N_STREAMS);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 1.0 });
    let shards = 2;

    let unfaulted = faulted_run(&spec, &streams, shards, None, 64);
    assert!(
        unfaulted.events.iter().any(|e| matches!(e, Event::Correlation(_))),
        "workload should report at least one correlated pair"
    );

    let plan = Arc::new(FaultPlan::seeded_kills(7, shards, 200, 900));
    let rt = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig {
            shards,
            queue_capacity: 32,
            recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
            fault_plan: Some(Arc::clone(&plan)),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    // Queries ride the queues that survived the crashes: they must be
    // answered by the restored workers, not lost.
    let pairs = rt.correlated_pairs().unwrap();
    let report = rt.shutdown();
    assert_eq!(plan.fired_count(), shards);

    let mut expected = unfaulted.events;
    sort_events(&mut expected);
    let mut recovered = report.events;
    sort_events(&mut recovered);
    assert_eq!(recovered, expected, "correlation events diverged after recovery");

    // The unfaulted run at the same point in time sees the same pairs.
    let rt2 = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig { shards, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt2.submit_blocking(&batch).unwrap();
    }
    assert_eq!(pairs, rt2.correlated_pairs().unwrap());
    rt2.shutdown();
}

/// Killing shards mid-cadence must not corrupt the collector's sketch
/// board: a restored worker's ship frontier resets, so it re-publishes
/// sketches the board has already absorbed, and the absorb must be
/// idempotent. The cross-shard pair set after recovery is bit-identical
/// to an unfaulted run's, and no exchange is double-counted into the
/// prune accounting.
#[test]
fn sketch_exchange_survives_mid_cadence_kills() {
    let (mut streams, _) = workload(42, N_STREAMS);
    // Plant a twin: streams 0 and 1 land on different shards for every
    // shard count > 1 under `g mod S` placement.
    streams[1] = streams[0].iter().map(|v| v + 1e-9).collect();
    let r_max = observed_r_max(&streams);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 0.25 });
    let shards = 2;

    let drive = |config: RuntimeConfig| {
        let rt = ShardedRuntime::launch(&spec, N_STREAMS, config).unwrap();
        for t in 0..N_VALUES {
            let batch: Batch =
                streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let pairs = rt.correlated_pairs().unwrap();
        let stats = rt.cross_corr_stats();
        (pairs, stats, rt.shutdown())
    };

    let (want, clean, _) =
        drive(RuntimeConfig { shards, queue_capacity: 32, ..RuntimeConfig::default() });
    assert!(want.iter().any(|&(a, b, _)| (a, b) == (0, 1)), "planted twin missing: {want:?}");
    assert!(clean.exchanges > 0, "sketches were never exchanged in the clean run");

    // Each shard sees 1536 appends; killing inside [150, 800) lands
    // strictly between cadence boundaries (one block = 16 appends per
    // stream), past at least one snapshot.
    let plan = Arc::new(FaultPlan::seeded_kills(0xD1CE, shards, 150, 800));
    let (got, faulted, report) = drive(RuntimeConfig {
        shards,
        queue_capacity: 32,
        recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
        fault_plan: Some(Arc::clone(&plan)),
        ..RuntimeConfig::default()
    });
    assert_eq!(plan.fired_count(), shards, "every scheduled kill must fire");
    assert_eq!(report.stats.total_restarts(), shards as u64);
    assert_eq!(got, want, "cross-shard pair set diverged after mid-cadence kills");
    // Respawned workers re-shipped from a reset frontier (strictly more
    // publications than the clean run), yet the prune accounting still
    // covers every cross-shard pair exactly once.
    assert!(
        faulted.exchanges >= clean.exchanges,
        "recovered workers must re-publish sketches: {faulted:?} vs {clean:?}"
    );
    assert_eq!(
        faulted.candidates + faulted.pruned,
        clean.candidates + clean.pruned,
        "exchange double-counted into prune accounting: {faulted:?} vs {clean:?}"
    );
}

/// A `DelayDrain` fault slows a worker without killing it; nothing may
/// change in the output and no restart may happen.
#[test]
fn delayed_drain_changes_timing_but_not_events() {
    let (streams, r_max) = workload(42, N_STREAMS);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    let plan = Arc::new(FaultPlan::new().delay_drain(0, 200, Duration::from_millis(30)));
    let report = faulted_run(&spec, &streams, 2, Some(Arc::clone(&plan)), 64);
    assert_eq!(plan.fired_count(), 1);
    assert_eq!(report.stats.total_restarts(), 0);
    let mut events = report.events;
    sort_events(&mut events);
    assert_eq!(events, reference);
}

/// Group commit must be invisible in the event stream. The drain loop
/// is paused several times per shard so the queue backs up and the
/// following drains commit genuinely multi-batch groups — asserted via
/// the group-size telemetry, so the test cannot silently degenerate to
/// single-batch groups — and the grouped event delivery at S ∈ {1, 2,
/// 4} must stay bit-identical to the per-event single-threaded
/// monitor.
#[test]
fn grouped_delivery_matches_per_event_delivery() {
    let (streams, r_max) = workload(42, N_STREAMS);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    assert!(!reference.is_empty(), "vacuous equivalence: reference run emitted nothing");
    sort_events(&mut reference);

    for shards in [1usize, 2, 4] {
        let mut plan = FaultPlan::new();
        for shard in 0..shards {
            for at in [50u64, 200, 350] {
                plan = plan.delay_drain(shard, at, Duration::from_millis(25));
            }
        }
        let plan = Arc::new(plan);
        let registry = stardust_telemetry::Registry::new();
        let rt = ShardedRuntime::launch(
            &spec,
            streams.len(),
            RuntimeConfig {
                shards,
                queue_capacity: 32,
                recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
                fault_plan: Some(Arc::clone(&plan)),
                telemetry: Some(registry.clone()),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        for t in 0..N_VALUES {
            let batch: Batch =
                streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let report = rt.shutdown();
        assert_eq!(plan.fired_count(), 3 * shards, "every drain delay must fire");
        let group_max =
            registry.histogram("stardust_runtime_group_size", "").snapshot().max.unwrap_or(0);
        assert!(
            group_max >= 2,
            "delayed drains never produced a multi-batch group at {shards} shard(s)"
        );
        let mut grouped = report.events;
        sort_events(&mut grouped);
        assert_eq!(
            grouped, reference,
            "grouped delivery diverged from per-event delivery at {shards} shard(s)"
        );
    }
}

/// Stress variant for CI's chaos job: more shards, multiple seeds.
/// Run with `cargo test --test chaos -- --ignored`.
#[test]
#[ignore = "stress: 8 shards x 4 seeds, run explicitly in CI"]
fn stress_eight_shards_four_seeds() {
    const STRESS_STREAMS: usize = 8;
    let (streams, r_max) = workload(7, STRESS_STREAMS);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    for seed in [1u64, 2, 3, 4] {
        // Each of the 8 shards owns one stream (512 appends); kill all
        // of them somewhere strictly inside the run.
        let plan = Arc::new(FaultPlan::seeded_kills(seed, 8, 50, 450));
        let report = faulted_run(&spec, &streams, 8, Some(Arc::clone(&plan)), 64);
        assert_eq!(plan.fired_count(), 8, "seed {seed}");
        assert_eq!(report.stats.total_restarts(), 8, "seed {seed}");
        let mut recovered = report.events;
        sort_events(&mut recovered);
        assert_eq!(recovered, reference, "seed {seed} diverged");
    }
}
