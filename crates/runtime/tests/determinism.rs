//! Sharded execution must not change what the framework detects.
//!
//! Aggregate and trend monitoring are per-stream computations, so the
//! sharded runtime must emit exactly the same event set as one
//! single-threaded `UnifiedMonitor` over all streams — regardless of
//! shard count or thread interleaving. Correlation is partitioned:
//! each shard reports pairs among its own streams, and for those pairs
//! it must agree exactly with the single-threaded monitor.

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_core::unified::Event;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{
    sort_events, AggregateSpec, Batch, CorrelationSpec, MonitorSpec, RuntimeConfig, ShardedRuntime,
    TrendPattern, TrendSpec,
};

const BASE_WINDOW: usize = 16;
const LEVELS: usize = 3;
const N_STREAMS: usize = 6;
const N_VALUES: usize = 512;

fn workload() -> (Vec<Vec<f64>>, f64) {
    let streams = random_walk_streams(42, N_STREAMS, N_VALUES);
    let r_max = observed_r_max(&streams);
    (streams, r_max)
}

/// A SUM threshold low enough that some windows of the data cross it
/// (so the test actually compares alarm events, not empty sets).
fn crossing_threshold(streams: &[Vec<f64>], window: usize) -> f64 {
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    max_sum * 0.98
}

/// Replays `streams` through a single-threaded monitor built from
/// `spec`, returning every event in arrival order.
fn single_threaded_events(spec: &MonitorSpec, streams: &[Vec<f64>]) -> Vec<Event> {
    let mut monitor = spec.build(streams.len()).unwrap().unwrap();
    let mut events = Vec::new();
    for t in 0..N_VALUES {
        for (s, stream) in streams.iter().enumerate() {
            events.extend(monitor.append(s as StreamId, stream[t]));
        }
    }
    events
}

/// Replays `streams` through a sharded runtime (one batch per time
/// step), returning every event.
fn sharded_events(spec: &MonitorSpec, streams: &[Vec<f64>], shards: usize) -> Vec<Event> {
    let rt = ShardedRuntime::launch(
        spec,
        streams.len(),
        RuntimeConfig { shards, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let report = rt.shutdown();
    assert_eq!(report.stats.total_appends(), (N_STREAMS * N_VALUES) as u64);
    report.events
}

#[test]
fn aggregate_and_trend_events_match_single_threaded() {
    let (streams, r_max) = workload();
    let threshold = crossing_threshold(&streams, 2 * BASE_WINDOW);
    // A registered pattern cut from the data itself, so at least one
    // exact match exists.
    let pattern: Vec<f64> = streams[2][100..100 + 2 * BASE_WINDOW].to_vec();
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window: 2 * BASE_WINDOW, threshold }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        });

    let mut reference = single_threaded_events(&spec, &streams);
    assert!(
        reference.iter().any(|e| matches!(e, Event::Aggregate { .. })),
        "workload should raise at least one aggregate alarm"
    );
    assert!(
        reference.iter().any(|e| matches!(e, Event::Trend(_))),
        "workload should produce at least one trend match"
    );
    sort_events(&mut reference);

    for shards in [1, 2, 3, 4] {
        let mut sharded = sharded_events(&spec, &streams, shards);
        sort_events(&mut sharded);
        assert_eq!(sharded, reference, "event set diverged at {shards} shards");
    }
}

#[test]
fn correlation_events_match_single_threaded_for_same_shard_pairs() {
    let (streams, r_max) = workload();
    // A radius wide enough that random walks correlate now and then.
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 1.0 });

    let reference = single_threaded_events(&spec, &streams);
    assert!(
        reference.iter().any(|e| matches!(e, Event::Correlation(_))),
        "workload should report at least one correlated pair"
    );

    let shards = 2;
    let mut expected: Vec<Event> = reference
        .into_iter()
        .filter(|e| match e {
            Event::Correlation(p) => p.a as usize % shards == p.b as usize % shards,
            _ => false,
        })
        .collect();
    sort_events(&mut expected);

    let mut sharded = sharded_events(&spec, &streams, shards);
    for e in &sharded {
        let Event::Correlation(p) = e else { panic!("unexpected event class: {e:?}") };
        assert_eq!(
            p.a as usize % shards,
            p.b as usize % shards,
            "a shard reported a cross-shard pair"
        );
    }
    sort_events(&mut sharded);
    assert_eq!(sharded, expected, "same-shard pairs must match the single-threaded monitor");
}

#[test]
fn queries_match_single_threaded_monitor() {
    let (streams, r_max) = workload();
    let window = 2 * BASE_WINDOW;
    let threshold = crossing_threshold(&streams, window);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max).with_aggregates(AggregateSpec {
        transform: TransformKind::Sum,
        windows: vec![WindowSpec { window, threshold }],
        box_capacity: 4,
    });

    let mut reference = spec.build(N_STREAMS).unwrap().unwrap();
    let rt = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig { shards: 3, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
        for (s, stream) in streams.iter().enumerate() {
            reference.append(s as StreamId, stream[t]);
        }
    }

    // Scatter-gather answers must agree with the single monitor.
    for s in 0..N_STREAMS as StreamId {
        let expected = reference.aggregate_monitor(s).unwrap().window_interval(window);
        assert_eq!(rt.aggregate_interval(s, window).unwrap(), expected, "stream {s}");
    }
    let merged = rt.class_stats().unwrap();
    let mut expected_candidates = 0;
    let mut expected_true = 0;
    for s in 0..N_STREAMS as StreamId {
        let st = reference.aggregate_monitor(s).unwrap().stats();
        expected_candidates += st.candidates;
        expected_true += st.true_alarms;
    }
    assert_eq!(merged.aggregate.candidates, expected_candidates);
    assert_eq!(merged.aggregate.true_alarms, expected_true);

    rt.shutdown();
}

#[test]
fn single_shard_correlated_pairs_match_linear_scan() {
    let (streams, r_max) = workload();
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 1.0 });

    let mut reference = spec.build(N_STREAMS).unwrap().unwrap();
    let rt = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig { shards: 1, queue_capacity: 32, ..RuntimeConfig::default() },
    )
    .unwrap();
    for t in 0..N_VALUES {
        for (s, stream) in streams.iter().enumerate() {
            reference.append(s as StreamId, stream[t]);
            rt.append_blocking(s as StreamId, stream[t]).unwrap();
        }
    }

    let corr = reference.correlation_monitor().unwrap();
    let t = (0..N_STREAMS as StreamId).filter_map(|s| corr.summary(s).now()).min().unwrap();
    let mut expected = corr.linear_scan_pairs(t);
    expected.sort_by_key(|x| (x.0, x.1));
    assert!(!expected.is_empty(), "workload should have at least one correlated pair");

    assert_eq!(rt.correlated_pairs().unwrap(), expected);
    rt.shutdown();
}
