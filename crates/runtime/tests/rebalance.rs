//! Elastic rebalancing must be invisible in the output.
//!
//! Every test resizes a live runtime — splitting stream groups onto a
//! spare shard, merging them back — and checks that the emitted event
//! set is *bit-identical* to a run that never resized (and to the
//! single-threaded monitor): no batch lost in a handoff, no batch
//! replayed twice after one, every query answered as if the layout had
//! never changed. The `--ignored` sweep additionally kills a worker at
//! every step of the migration protocol.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_core::unified::Event;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{
    sort_events, AggregateSpec, Batch, CorrelationSpec, FaultKind, FaultPlan, MigrationStep,
    MonitorSpec, RebalanceAction, RecoveryPolicy, RuntimeConfig, RuntimeError, ShardedRuntime,
    TrendPattern, TrendSpec,
};

const BASE_WINDOW: usize = 16;
const LEVELS: usize = 3;
const N_STREAMS: usize = 6;
const N_VALUES: usize = 512;

fn workload(seed: u64) -> (Vec<Vec<f64>>, f64) {
    let streams = random_walk_streams(seed, N_STREAMS, N_VALUES);
    let r_max = observed_r_max(&streams);
    (streams, r_max)
}

/// A SUM threshold low enough that some windows of the data cross it.
fn crossing_threshold(streams: &[Vec<f64>], window: usize) -> f64 {
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    max_sum * 0.98
}

fn agg_trend_spec(streams: &[Vec<f64>], r_max: f64) -> MonitorSpec {
    let threshold = crossing_threshold(streams, 2 * BASE_WINDOW);
    let pattern: Vec<f64> = streams[2][100..100 + 2 * BASE_WINDOW].to_vec();
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window: 2 * BASE_WINDOW, threshold }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        })
}

/// Replays `streams` through a single-threaded monitor.
fn single_threaded_events(spec: &MonitorSpec, streams: &[Vec<f64>]) -> Vec<Event> {
    let mut monitor = spec.build(streams.len()).unwrap().unwrap();
    let mut events = Vec::new();
    for t in 0..N_VALUES {
        for (s, stream) in streams.iter().enumerate() {
            events.extend(monitor.append(s as StreamId, stream[t]));
        }
    }
    events
}

/// An elastic config: `groups > shards` so there is something to move,
/// one spare slot to move it to.
fn elastic_config(shards: usize, groups: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        groups,
        spare_shards: 1,
        queue_capacity: 32,
        recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
        ..RuntimeConfig::default()
    }
}

fn feed(rt: &ShardedRuntime, streams: &[Vec<f64>], range: std::ops::Range<usize>) {
    for t in range {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
}

/// Tentpole invariant: split a hot shard onto the spare mid-ingest,
/// merge it back later, and the event set is bit-identical to the
/// single-threaded monitor at every shard count.
#[test]
fn split_then_merge_is_invisible_in_the_event_set() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    assert!(reference.iter().any(|e| matches!(e, Event::Aggregate { .. })));
    assert!(reference.iter().any(|e| matches!(e, Event::Trend(_))));
    sort_events(&mut reference);

    for shards in [2usize, 3, 4] {
        // Group `shards` lands on slot 0 (`g mod shards`); the spare is
        // slot `shards`, the first slot past the primaries.
        let spare = shards;
        let rt =
            ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(shards, 2 * shards)).unwrap();
        assert_eq!(rt.live_shards(), shards, "spares must start idle");
        feed(&rt, &streams, 0..N_VALUES / 3);
        rt.split_shard(0, spare, &[shards]).unwrap();
        assert_eq!(rt.live_shards(), shards + 1, "split must activate the spare");
        feed(&rt, &streams, N_VALUES / 3..2 * N_VALUES / 3);
        assert_eq!(rt.merge_shard(spare, 0).unwrap(), 1, "merge must drain the spare");
        assert_eq!(rt.live_shards(), shards);
        feed(&rt, &streams, 2 * N_VALUES / 3..N_VALUES);
        let report = rt.shutdown();
        assert_eq!(report.stats.epoch, 2, "each migration must bump the epoch");
        assert_eq!(report.stats.migrations, 2);
        assert_eq!(
            report.stats.total_appends(),
            (N_STREAMS * N_VALUES) as u64,
            "appends lost or duplicated across the resize at {shards} shards"
        );
        let mut resized = report.events;
        sort_events(&mut resized);
        assert_eq!(resized, reference, "event set diverged after resize at {shards} shards");
    }
}

/// Same invariant under genuinely concurrent ingest: a feeder thread
/// never stops submitting while the main thread splits and merges.
/// Producers racing a frozen group must park and re-resolve, not drop
/// or double-apply their batches.
#[test]
fn live_migration_under_concurrent_ingest() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    // 2 primaries + 1 spare over 6 groups: slot 0 owns {0, 2, 4}.
    let rt = ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(2, 6)).unwrap();
    let total = (N_STREAMS * N_VALUES) as u64;
    thread::scope(|scope| {
        scope.spawn(|| feed(&rt, &streams, 0..N_VALUES));
        while rt.stats().total_appends() < total / 3 {
            thread::sleep(Duration::from_millis(1));
        }
        rt.split_shard(0, 2, &[2, 4]).unwrap();
        while rt.stats().total_appends() < 2 * total / 3 {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(rt.merge_shard(2, 0).unwrap(), 2);
    });
    assert_eq!(rt.epoch(), 4);
    assert_eq!(rt.migrations(), 4);
    let report = rt.shutdown();
    assert_eq!(report.stats.total_appends(), total);
    let mut resized = report.events;
    sort_events(&mut resized);
    assert_eq!(resized, reference, "live migration leaked into the event set");
}

/// Cross-shard correlation state must survive a resize: a run that
/// split mid-ingest answers `correlated_pairs` exactly like a run that
/// never did, and their event sets match.
#[test]
fn correlated_pairs_match_a_never_resized_run() {
    let (streams, r_max) = workload(42);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 1.0 });

    let baseline = ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(2, 4)).unwrap();
    feed(&baseline, &streams, 0..N_VALUES);
    let want = baseline.correlated_pairs().unwrap();
    assert!(!want.is_empty(), "workload should report at least one correlated pair");
    let mut expected = baseline.shutdown().events;
    sort_events(&mut expected);

    let rt = ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(2, 4)).unwrap();
    feed(&rt, &streams, 0..N_VALUES / 2);
    rt.split_shard(0, 2, &[2]).unwrap();
    feed(&rt, &streams, N_VALUES / 2..N_VALUES);
    let got = rt.correlated_pairs().unwrap();
    let report = rt.shutdown();
    assert_eq!(got, want, "correlated pairs diverged after a split");
    let mut resized = report.events;
    sort_events(&mut resized);
    assert_eq!(resized, expected, "correlation events diverged after a split");
}

/// Runs one split (group `shards` → spare) and one merge back with a
/// one-shot kill injected at `step` of `group`'s migration, and checks
/// the event set still matches the single-threaded monitor.
fn killed_migration_run(
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    reference: &[Event],
    group: usize,
    step: MigrationStep,
    merge_into_spare: bool,
) {
    let plan = Arc::new(FaultPlan::new().migration_fault(group, step, FaultKind::Panic));
    let rt = ShardedRuntime::launch(
        spec,
        N_STREAMS,
        RuntimeConfig { fault_plan: Some(Arc::clone(&plan)), ..elastic_config(2, 4) },
    )
    .unwrap();
    feed(&rt, streams, 0..N_VALUES / 3);
    // Slot 0 owns {0, 2}; the spare is slot 2. The split moves group 2;
    // the merge either returns it (2 → 0) or drains slot 0's remaining
    // group 0 into the spare (0 → 2), so a fault keyed on group 0 fires
    // during the *merge* migration instead of the split.
    rt.split_shard(0, 2, &[2]).unwrap();
    feed(&rt, streams, N_VALUES / 3..2 * N_VALUES / 3);
    if merge_into_spare {
        assert_eq!(rt.merge_shard(0, 2).unwrap(), 1);
    } else {
        assert_eq!(rt.merge_shard(2, 0).unwrap(), 1);
    }
    feed(&rt, streams, 2 * N_VALUES / 3..N_VALUES);
    let report = rt.shutdown();
    assert_eq!(plan.fired_count(), 1, "migration fault at {step:?} never fired");
    assert_eq!(
        report.stats.total_restarts(),
        1,
        "the killed worker must be restored exactly once ({step:?})"
    );
    assert_eq!(report.stats.migrations, 2);
    assert_eq!(report.stats.total_appends(), (N_STREAMS * N_VALUES) as u64, "at {step:?}");
    let mut recovered = report.events;
    sort_events(&mut recovered);
    assert_eq!(recovered, reference, "event set diverged after a kill at {step:?}");
}

/// A worker killed mid-handoff — the source after sealing, the
/// destination while adopting — must be healed by the supervisor
/// without losing or replaying a batch.
#[test]
fn killed_worker_mid_migration_recovers_exactly_once() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    for step in [MigrationStep::AfterSeal, MigrationStep::BeforeAdopt] {
        killed_migration_run(&spec, &streams, &reference, 2, step, false);
    }
}

/// Exhaustive chaos sweep: kill the protocol at *every* step, during a
/// split and during a merge. Run with
/// `cargo test --test rebalance -- --ignored`.
#[test]
#[ignore = "stress: 8 kill points across split and merge, run explicitly in CI"]
fn kill_sweep_covers_every_migration_step() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);
    let mut reference = single_threaded_events(&spec, &streams);
    sort_events(&mut reference);

    let steps = [
        MigrationStep::BeforeSeal,
        MigrationStep::AfterSeal,
        MigrationStep::BeforeAdopt,
        MigrationStep::AfterAdopt,
    ];
    for step in steps {
        // Kill the split's migration of group 2...
        killed_migration_run(&spec, &streams, &reference, 2, step, false);
        // ...and the merge's migration of group 0.
        killed_migration_run(&spec, &streams, &reference, 0, step, true);
    }
}

/// Satellite: a shard dying faster than the storm cap allows is
/// fail-stopped with a typed error instead of an unbounded
/// crash/restore loop.
#[test]
fn respawn_storm_fail_stops_the_shard() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);
    // Three kills land on slot 0 inside one window; the cap allows two.
    let plan = Arc::new(FaultPlan::new().kill(0, 50).kill(0, 60).kill(0, 70));
    let rt = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig {
            shards: 2,
            queue_capacity: 32,
            recovery: Some(RecoveryPolicy { snapshot_every: 64 }),
            fault_plan: Some(Arc::clone(&plan)),
            max_restarts_in_window: 2,
            restart_window: Duration::from_secs(30),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let mut storm = None;
    for t in 0..N_VALUES {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        if let Err(e) = rt.submit_blocking(&batch) {
            storm = Some(e);
            break;
        }
    }
    match storm {
        Some(RuntimeError::RespawnStorm { shard: 0, restarts: 3 }) => {}
        other => panic!("expected RespawnStorm on shard 0 after 3 restarts, got {other:?}"),
    }
    assert_eq!(plan.fired_count(), 3, "all three kills must fire before the cap trips");
    assert_eq!(rt.respawn_storms(), vec![(0, 3)]);
    assert_eq!(rt.live_shards(), 1, "the failed slot must leave the live set");
    // The healthy shard still answers; the runtime tears down cleanly.
    let report = rt.shutdown();
    assert!(report.stats.total_appends() > 0);
}

/// The queue-depth / append-rate policy: a slot appending far above the
/// per-slot average splits onto the idle spare, a slot gone completely
/// cold merges into the busiest, and a balanced layout is left alone.
#[test]
fn rebalance_policy_splits_hot_and_merges_cold() {
    let (streams, r_max) = workload(42);
    let spec = MonitorSpec::new(BASE_WINDOW, LEVELS, r_max).with_aggregates(AggregateSpec {
        transform: TransformKind::Sum,
        windows: vec![WindowSpec { window: 2 * BASE_WINDOW, threshold: f64::MAX }],
        box_capacity: 4,
    });
    // 3 primaries + 1 spare over 6 single-stream groups: slot 0 owns
    // streams {0, 3}, slot 1 owns {1, 4}, slot 2 owns {2, 5}.
    let rt = ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(3, 6)).unwrap();
    let drained = |want: u64| {
        while rt.stats().total_appends() < want {
            thread::sleep(Duration::from_millis(1));
        }
    };

    // Phase 1 — slot 0 is hot: its streams append every tick, slot 2's
    // every 4th, slot 1's every 8th. 512 vs 128 vs 64 appends is far
    // beyond twice the per-slot average, so the policy moves the upper
    // half of slot 0's groups to the spare (slot 3).
    let send = |subset: &[usize], t: usize| -> u64 {
        let batch: Batch = subset.iter().map(|&s| (s as StreamId, streams[s][t])).collect();
        rt.submit_blocking(&batch).unwrap();
        subset.len() as u64
    };
    let mut fed = 0;
    for t in 0..256 {
        fed += send(&[0, 3], t);
        if t % 4 == 0 {
            fed += send(&[2, 5], t);
        }
        if t % 8 == 0 {
            fed += send(&[1, 4], t);
        }
    }
    drained(fed);
    assert_eq!(
        rt.rebalance_step().unwrap(),
        Some(RebalanceAction::Split { from: 0, to: 3, groups: vec![3] }),
        "hot slot 0 must split onto the idle spare"
    );

    // Phase 2 — slot 0 goes cold (nothing for streams 0 or 3) while
    // slot 2 is the busiest: slot 0's remaining group merges into it.
    // Slot 3 received group 3's historical appends in the split, but
    // the migration shifts the policy baseline by the same amount, so
    // the transfer must not read as load here.
    for t in 256..416 {
        fed += send(&[2, 5], t);
        if t % 4 == 0 {
            fed += send(&[1, 4], t);
        }
    }
    drained(fed);
    assert_eq!(
        rt.rebalance_step().unwrap(),
        Some(RebalanceAction::Merge { from: 0, into: 2, groups: vec![0] }),
        "cold slot 0 must merge into the busiest slot"
    );

    // Phase 3 — balanced traffic: the policy must not thrash.
    for t in 416..448 {
        fed += send(&[0, 1, 2, 3, 4, 5], t);
    }
    drained(fed);
    assert_eq!(rt.rebalance_step().unwrap(), None, "a balanced layout must be left alone");

    let report = rt.shutdown();
    assert_eq!(report.stats.migrations, 2);
    assert_eq!(report.stats.total_appends(), fed);
}

/// Rebalancing without the recovery journal has no handoff mechanism;
/// bad arguments are rejected before anything freezes.
#[test]
fn rebalance_validates_arguments_and_requires_recovery() {
    let (streams, r_max) = workload(42);
    let spec = agg_trend_spec(&streams, r_max);

    let bare = ShardedRuntime::launch(
        &spec,
        N_STREAMS,
        RuntimeConfig { recovery: None, ..elastic_config(2, 4) },
    )
    .unwrap();
    assert!(matches!(bare.split_shard(0, 2, &[2]), Err(RuntimeError::MigrationUnsupported)));
    assert!(matches!(bare.rebalance_step(), Err(RuntimeError::MigrationUnsupported)));
    bare.shutdown();

    let rt = ShardedRuntime::launch(&spec, N_STREAMS, elastic_config(2, 4)).unwrap();
    assert_eq!(rt.n_shards(), 3, "2 primaries + 1 spare");
    assert_eq!(rt.n_groups(), 4);
    assert_eq!((rt.epoch(), rt.migrations(), rt.live_shards()), (0, 0, 2));
    for err in [
        rt.split_shard(0, 0, &[0]),       // source == destination
        rt.split_shard(0, 2, &[]),        // nothing to move
        rt.split_shard(0, 2, &[1]),       // group 1 belongs to slot 1
        rt.split_shard(0, 2, &[9]),       // no such group
        rt.split_shard(0, 7, &[2]),       // no such slot
        rt.merge_shard(1, 1).map(|_| ()), // source == destination
    ] {
        assert!(matches!(err, Err(RuntimeError::Rebalance { .. })), "got {err:?}");
    }
    // Nothing above may have touched the routing table.
    assert_eq!((rt.epoch(), rt.migrations()), (0, 0));
    feed(&rt, &streams, 0..8);
    rt.shutdown();
}
