//! The backpressure contract: bounded queues reject (`try_*`) or park
//! (`*_blocking`) producers instead of buffering without limit, and the
//! runtime recovers once the worker catches up.

use std::sync::Arc;
use std::time::{Duration, Instant};

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_runtime::{
    AggregateSpec, Batch, FaultPlan, MonitorSpec, RuntimeConfig, RuntimeError, ShardedRuntime,
};

fn spec() -> MonitorSpec {
    MonitorSpec::new(16, 3, 100.0).with_aggregates(AggregateSpec {
        transform: TransformKind::Sum,
        windows: vec![WindowSpec { window: 32, threshold: 1e9 }],
        box_capacity: 4,
    })
}

/// A batch expensive enough that the worker lags a tight producer loop.
fn heavy_batch() -> Batch {
    (0..4_000).map(|i| (0 as StreamId, (i % 100) as f64)).collect()
}

#[test]
fn try_append_reports_queue_full_then_recovers() {
    let rt = ShardedRuntime::launch(
        &spec(),
        1,
        RuntimeConfig { shards: 1, queue_capacity: 2, ..RuntimeConfig::default() },
    )
    .unwrap();

    // Enqueueing is ~ns, draining a heavy batch is ~ms: a tight loop
    // must hit the bounded queue's limit almost immediately.
    let mut accepted = 0u64;
    let mut saw_full = false;
    for _ in 0..100_000 {
        match rt.try_submit(&heavy_batch()) {
            Ok(None) => accepted += heavy_batch().len() as u64,
            Ok(Some(partial)) => {
                assert!(!partial.rejected.is_empty());
                saw_full = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_full, "a 2-deep queue never filled under a tight producer loop");

    // Single-value try_append must see the same backpressure while the
    // queue is still full... (the worker may drain between calls, so
    // probe a few times rather than assert on one call)
    let mut single_full = false;
    for _ in 0..100_000 {
        match rt.try_append(0, 1.0) {
            Err(RuntimeError::Backpressure(_)) => {
                single_full = true;
                break;
            }
            Ok(()) => accepted += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(single_full, "try_append never observed backpressure");

    // ...while the blocking path parks until there is room and succeeds.
    rt.append_blocking(0, 1.0).unwrap();
    accepted += 1;

    // Recovery: once the worker drains, the non-blocking path works
    // again (bounded retry in case the worker is mid-batch).
    let mut recovered = false;
    for _ in 0..1_000_000 {
        match rt.try_append(0, 1.0) {
            Ok(()) => {
                accepted += 1;
                recovered = true;
                break;
            }
            Err(RuntimeError::Backpressure(_)) => std::thread::yield_now(),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(recovered, "queue never drained after backpressure");

    let stats = rt.stats();
    assert!(
        stats.max_queue_high_water() >= 2,
        "high-water mark should reach the queue capacity, got {}",
        stats.max_queue_high_water()
    );
    assert!(rt.drain_events().is_empty(), "threshold 1e9 should never fire");

    // Graceful shutdown drains everything that was accepted.
    let report = rt.shutdown();
    assert_eq!(report.stats.total_appends(), accepted);
    assert_eq!(report.stats.shards.len(), 1);
    assert_eq!(report.stats.shards[0].queue_depth, 0);
}

/// Regression: a stalled worker must surface as *bounded* backpressure
/// — `try_append` fails within `queue_capacity + 1` accepted values
/// (capacity plus the message the worker holds mid-stall), the observed
/// queue depth never exceeds capacity, and `append_blocking` makes
/// progress once the stall clears instead of parking forever.
#[test]
fn stalled_worker_bounds_the_queue_then_unparks_producers() {
    const CAPACITY: usize = 4;
    let stall = Duration::from_millis(150);
    // Stall on the very first append, deterministically.
    let plan = Arc::new(FaultPlan::new().stall(0, 1, stall));
    let rt = ShardedRuntime::launch(
        &spec(),
        1,
        RuntimeConfig {
            shards: 1,
            queue_capacity: CAPACITY,
            fault_plan: Some(Arc::clone(&plan)),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    // The first value triggers the stall inside the worker. Wait until
    // the worker has actually picked it up (queue empty again) so the
    // fills below land behind a worker that is provably asleep.
    let started = Instant::now();
    rt.try_append(0, 1.0).unwrap();
    let mut accepted = 1u64;
    while rt.stats().shards[0].queue_depth > 0 {
        std::thread::yield_now();
    }

    // While the worker sleeps, exactly CAPACITY more values fit.
    let mut full = false;
    for _ in 0..(CAPACITY + 1) {
        match rt.try_append(0, 1.0) {
            Ok(()) => accepted += 1,
            Err(RuntimeError::Backpressure(_)) => {
                full = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(full, "queue never filled while the worker was stalled");
    assert_eq!(
        accepted,
        CAPACITY as u64 + 1,
        "a stalled worker must bound acceptance at queue capacity"
    );
    // The mark samples *attempted* depth: the rejected push observes
    // capacity + 1 before it is rolled back, never more.
    assert!(
        rt.stats().max_queue_high_water() <= CAPACITY + 1,
        "queue depth exceeded its bound during the stall"
    );

    // The blocking path parks through the stall and completes once the
    // worker resumes draining.
    rt.append_blocking(0, 2.0).unwrap();
    accepted += 1;
    assert!(
        started.elapsed() >= stall / 2,
        "append_blocking returned while the queue should still have been full"
    );

    assert_eq!(plan.fired_count(), 1, "the stall fault should have fired exactly once");
    let report = rt.shutdown();
    assert_eq!(report.stats.total_appends(), accepted);
    assert_eq!(report.stats.total_restarts(), 0, "a stall is not a crash");
}

#[test]
fn unknown_stream_is_rejected_without_enqueueing() {
    let rt = ShardedRuntime::launch(&spec(), 1, RuntimeConfig::default()).unwrap();
    assert!(matches!(
        rt.try_append(7, 1.0),
        Err(RuntimeError::UnknownStream { stream: 7, n_streams: 1 })
    ));
    assert!(matches!(rt.append_blocking(7, 1.0), Err(RuntimeError::UnknownStream { .. })));
    let batch: Batch = [(0, 1.0), (7, 2.0)].into_iter().collect();
    assert!(matches!(rt.submit_blocking(&batch), Err(RuntimeError::UnknownStream { .. })));
    let report = rt.shutdown();
    assert_eq!(report.stats.total_appends(), 0, "rejected batches must not be enqueued");
}

#[test]
fn launch_rejects_bad_configs() {
    assert!(matches!(
        ShardedRuntime::launch(&spec(), 0, RuntimeConfig::default()),
        Err(RuntimeError::NoStreams)
    ));
    assert!(matches!(
        ShardedRuntime::launch(&MonitorSpec::new(16, 3, 100.0), 4, RuntimeConfig::default()),
        Err(RuntimeError::NoQueryClass)
    ));
    // More shards than streams: clamped, not an error.
    let rt = ShardedRuntime::launch(
        &spec(),
        1,
        RuntimeConfig { shards: 8, queue_capacity: 4, ..RuntimeConfig::default() },
    )
    .unwrap();
    assert_eq!(rt.n_shards(), 1);
    rt.shutdown();
}
