//! Durable persistence must survive process death and disk damage
//! without changing what the framework detects.
//!
//! The tests here kill the whole runtime (`crash()`), damage its files
//! (torn writes, bit flips, truncations, failed fsyncs), reopen the
//! directory, re-submit everything past the durable watermark, and
//! require the union of all delivered events to be *bit-identical* to
//! an unfaulted single-threaded run. The proptest at the bottom attacks
//! the WAL at arbitrary byte offsets: `open()` must either recover
//! exactly or return a typed [`RecoveryError`] — never panic, never
//! silently drop a checksummed-complete record. The `--ignored` tests
//! make that sweep exhaustive (every offset, both damage modes) and add
//! a multi-seed crash-storm stress.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_core::unified::Event;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{
    sort_events, AggregateSpec, Batch, DiskFaultKind, DiskFile, FaultPlan, MonitorSpec,
    PersistConfig, RecoveryPolicy, RuntimeConfig, ShardedRuntime, SyncPolicy, TrendPattern,
    TrendSpec,
};
use stardust_telemetry::Registry;

const BASE_WINDOW: usize = 16;
const LEVELS: usize = 3;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sd-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn workload(seed: u64, n_streams: usize, n_values: usize) -> (Vec<Vec<f64>>, f64) {
    let streams = random_walk_streams(seed, n_streams, n_values);
    let r_max = observed_r_max(&streams);
    (streams, r_max)
}

/// Aggregate + trend spec whose thresholds the workload actually
/// crosses, so the event-set equality below is not vacuous.
fn spec_for(streams: &[Vec<f64>], r_max: f64) -> MonitorSpec {
    let window = 2 * BASE_WINDOW;
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    let pattern: Vec<f64> = streams[0][8..8 + window].to_vec();
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window, threshold: max_sum * 0.98 }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        })
}

/// Every event an unfaulted single-threaded monitor emits for the
/// feed, in emission order (the order a single-shard worker delivers
/// and acks them in).
fn emission_ordered_events(
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    n_values: usize,
) -> Vec<Event> {
    let mut monitor = spec.build(streams.len()).unwrap().unwrap();
    let mut events = Vec::new();
    for t in 0..n_values {
        for (s, stream) in streams.iter().enumerate() {
            events.extend(monitor.append(s as StreamId, stream[t]));
        }
    }
    events
}

/// Same, sorted for set comparison.
fn reference_events(spec: &MonitorSpec, streams: &[Vec<f64>], n_values: usize) -> Vec<Event> {
    let mut events = emission_ordered_events(spec, streams, n_values);
    sort_events(&mut events);
    events
}

fn config(shards: usize, faults: Option<Arc<FaultPlan>>, snapshot_every: u64) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        queue_capacity: 32,
        recovery: Some(RecoveryPolicy { snapshot_every }),
        fault_plan: faults,
        ..RuntimeConfig::default()
    }
}

/// The exact sequence of appends shard `shard` journals for a full
/// row-major feed (global ids kept — re-submission uses the public API).
fn shard_feed(
    streams: &[Vec<f64>],
    n_values: usize,
    shard: usize,
    n_shards: usize,
) -> Vec<(StreamId, f64)> {
    let mut feed = Vec::new();
    for t in 0..n_values {
        for (s, stream) in streams.iter().enumerate() {
            if s % n_shards == shard {
                feed.push((s as StreamId, stream[t]));
            }
        }
    }
    feed
}

/// The full drill: feed through a persisted runtime under `faults`,
/// kill the process (`crash()`), reopen the directory unfaulted,
/// re-submit everything past each shard's durable watermark, and
/// return the union of every event delivered along the way (sorted).
#[allow(clippy::too_many_arguments)]
fn crash_reopen_resubmit(
    dir: &Path,
    spec: &MonitorSpec,
    streams: &[Vec<f64>],
    n_values: usize,
    shards: usize,
    sync: SyncPolicy,
    faults: Option<Arc<FaultPlan>>,
    snapshot_every: u64,
) -> Vec<Event> {
    let persist = PersistConfig::new(dir).sync(sync);
    let (rt, _) =
        ShardedRuntime::open(spec, streams.len(), config(shards, faults, snapshot_every), {
            persist.clone()
        })
        .unwrap();
    for t in 0..n_values {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        if rt.submit_blocking(&batch).is_err() {
            // A wedged shard failed stop; the rest of this feed is
            // re-submitted from the durable watermark after reopen.
            break;
        }
    }
    let mut all_events = rt.crash().events;

    let (rt, report) =
        ShardedRuntime::open(spec, streams.len(), config(shards, None, snapshot_every), persist)
            .unwrap();
    all_events.extend(rt.drain_events());
    let n_shards = rt.n_shards();
    for shard_report in &report.shards {
        let feed = shard_feed(streams, n_values, shard_report.shard, n_shards);
        assert!(
            shard_report.durable_appends as usize <= feed.len(),
            "durable watermark beyond the submitted feed"
        );
        for &(stream, value) in &feed[shard_report.durable_appends as usize..] {
            rt.append_blocking(stream, value).unwrap();
        }
    }
    let report = rt.shutdown();
    all_events.extend(report.events);
    assert_eq!(
        report.stats.total_appends(),
        (streams.len() * n_values) as u64,
        "the resubmitted run must cover the entire feed exactly once"
    );
    sort_events(&mut all_events);
    all_events
}

/// Baseline: no faults at all. Kill the process mid-stream, reopen,
/// keep feeding — the event set matches the unfaulted single monitor.
#[test]
fn crash_and_reopen_recover_the_exact_event_set() {
    let n_values = 384;
    let (streams, r_max) = workload(11, 4, n_values);
    let spec = spec_for(&streams, r_max);
    let reference = reference_events(&spec, &streams, n_values);
    assert!(!reference.is_empty(), "workload must produce events");

    for shards in [1usize, 3] {
        let dir = tempdir(&format!("reopen-{shards}"));
        let persist = PersistConfig::new(&dir).sync(SyncPolicy::EveryN(64));
        let (rt, report) =
            ShardedRuntime::open(&spec, streams.len(), config(shards, None, 64), persist.clone())
                .unwrap();
        assert_eq!(report.total_durable_appends(), 0, "fresh directory");
        let half = n_values / 2;
        for t in 0..half {
            let batch: Batch =
                streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        let mut all_events = rt.crash().events;

        let (rt, report) =
            ShardedRuntime::open(&spec, streams.len(), config(shards, None, 64), persist).unwrap();
        assert_eq!(
            report.total_durable_appends(),
            (streams.len() * half) as u64,
            "crash() drains accepted batches, so everything submitted is durable"
        );
        all_events.extend(rt.drain_events());
        for t in half..n_values {
            let batch: Batch =
                streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        all_events.extend(rt.shutdown().events);
        sort_events(&mut all_events);
        assert_eq!(all_events, reference, "event set diverged at {shards} shards");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Every sync policy recovers the same state — the policy paces
/// fsyncs, not what is written (process death keeps unsynced bytes).
#[test]
fn all_sync_policies_recover_identically() {
    let n_values = 192;
    let (streams, r_max) = workload(12, 3, n_values);
    let spec = spec_for(&streams, r_max);
    let reference = reference_events(&spec, &streams, n_values);

    for (tag, sync) in [
        ("always", SyncPolicy::Always),
        ("every", SyncPolicy::EveryN(8)),
        ("onsnap", SyncPolicy::OnSnapshot),
    ] {
        let dir = tempdir(&format!("sync-{tag}"));
        let events = crash_reopen_resubmit(&dir, &spec, &streams, n_values, 2, sync, None, 48);
        assert_eq!(events, reference, "policy {tag} diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn WAL write wedges its shard (fail stop), the torn tail is
/// truncated at reopen, and re-submission from the durable watermark
/// restores the exact event set.
#[test]
fn torn_write_fails_stop_and_recovers_the_prefix() {
    let n_values = 256;
    let (streams, r_max) = workload(13, 4, n_values);
    let spec = spec_for(&streams, r_max);
    let reference = reference_events(&spec, &streams, n_values);

    // Tear the write that crosses byte 900 of shard 0's WAL — far
    // enough in that complete records precede it.
    let plan = Arc::new(FaultPlan::new().disk_fault(0, DiskFaultKind::TornWrite { at_byte: 900 }));
    let dir = tempdir("torn");
    let events = crash_reopen_resubmit(
        &dir,
        &spec,
        &streams,
        n_values,
        2,
        SyncPolicy::EveryN(16),
        Some(Arc::clone(&plan)),
        64,
    );
    assert_eq!(plan.fired_count(), 1, "the torn write must fire");
    assert_eq!(events, reference, "torn write changed the detected event set");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected fsync failure aborts a snapshot rotation; the chain
/// stays on the previous generation and nothing is lost.
#[test]
fn failed_fsync_aborts_rotation_but_loses_nothing() {
    let n_values = 256;
    let (streams, r_max) = workload(14, 4, n_values);
    let spec = spec_for(&streams, r_max);
    let reference = reference_events(&spec, &streams, n_values);

    let plan = Arc::new(
        FaultPlan::new()
            .disk_fault(0, DiskFaultKind::FailFsync { nth: 2 })
            .disk_fault(1, DiskFaultKind::FailFsync { nth: 0 }),
    );
    let dir = tempdir("fsync");
    let events = crash_reopen_resubmit(
        &dir,
        &spec,
        &streams,
        n_values,
        2,
        SyncPolicy::EveryN(8),
        Some(Arc::clone(&plan)),
        32,
    );
    assert_eq!(plan.fired_count(), 2);
    assert_eq!(events, reference, "aborted rotation changed the detected event set");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip in the current snapshot file makes `open()` fall back to
/// the previous generation and rebuild the same state from its WALs.
#[test]
fn corrupt_snapshot_falls_back_one_generation() {
    let n_values = 320;
    let (streams, r_max) = workload(15, 3, n_values);
    let spec = spec_for(&streams, r_max);
    let reference = reference_events(&spec, &streams, n_values);

    let dir = tempdir("snapflip");
    let persist = PersistConfig::new(&dir).sync(SyncPolicy::EveryN(16));
    // Small cadence => several rotations, so a `.prev` generation exists.
    let (rt, _) =
        ShardedRuntime::open(&spec, streams.len(), config(1, None, 48), persist.clone()).unwrap();
    for t in 0..n_values {
        let batch: Batch = streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
        rt.submit_blocking(&batch).unwrap();
    }
    let mut all_events = rt.crash().events;
    assert!(dir.join("shard-0.snap.prev").exists(), "cadence must have rotated at least twice");

    let plan = Arc::new(
        FaultPlan::new()
            .disk_fault(0, DiskFaultKind::BitFlip { file: DiskFile::Snapshot, at_byte: 40 }),
    );
    let (rt, report) =
        ShardedRuntime::open(&spec, streams.len(), config(1, Some(plan), 48), persist).unwrap();
    assert!(report.any_fallback(), "damaged snapshot must trigger the fallback");
    assert_eq!(
        report.total_durable_appends(),
        (streams.len() * n_values) as u64,
        "the previous generation plus its WALs reproduce the full state"
    );
    all_events.extend(rt.drain_events());
    let report = rt.shutdown();
    all_events.extend(report.events);
    sort_events(&mut all_events);
    assert_eq!(all_events, reference, "fallback produced a different event set");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// WAL damage sweep: recover exactly or fail with a typed error.
// ---------------------------------------------------------------------

/// One frame of a clean WAL: where it ends, how many batch items it
/// carries (0 for ack records), and the cumulative delivered-event
/// count it acks (None for batch records).
struct Frame {
    end: usize,
    items: u64,
    ack: Option<u64>,
}

const WAL_HEADER_LEN: usize = 28;

/// Parses the frame layout of a clean WAL so damage outcomes can be
/// predicted exactly.
fn wal_frames(bytes: &[u8]) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let payload = &bytes[pos + 8..pos + 8 + len];
        let (items, ack) = match payload[0] {
            0x00 => (u32::from_le_bytes(payload[1..5].try_into().unwrap()) as u64, None),
            _ => (0, Some(u64::from_le_bytes(payload[1..9].try_into().unwrap()))),
        };
        pos += 8 + len;
        frames.push(Frame { end: pos, items, ack });
    }
    assert_eq!(pos, bytes.len(), "clean WAL must parse to its exact length");
    frames
}

/// A clean single-shard persisted run whose WAL carries every record
/// (cadence 0 => no rotation), ready for the damage sweep.
struct WalFixture {
    dir: PathBuf,
    spec: MonitorSpec,
    streams: Vec<Vec<f64>>,
    n_values: usize,
    clean_wal: Vec<u8>,
    frames: Vec<Frame>,
    /// The full event sequence in emission order — the clean run
    /// delivered (and acked) a prefix of exactly this sequence.
    ordered: Vec<Event>,
}

impl WalFixture {
    fn build(tag: &str, seed: u64, n_values: usize) -> Self {
        Self::build_with(tag, seed, n_values, SyncPolicy::EveryN(16), None)
    }

    /// Like [`WalFixture::build`], but the worker is stalled on its
    /// first append so the queue backs up and the backlog commits as
    /// genuinely multi-batch groups — the WAL is then a product of
    /// coalesced group writes (verified via the group telemetry, so
    /// the mid-group sweep cannot go vacuous).
    fn build_grouped(tag: &str, seed: u64, n_values: usize) -> Self {
        let plan = Arc::new(FaultPlan::new().stall(0, 1, std::time::Duration::from_millis(150)));
        Self::build_with(tag, seed, n_values, SyncPolicy::Always, Some(plan))
    }

    fn build_with(
        tag: &str,
        seed: u64,
        n_values: usize,
        sync: SyncPolicy,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let grouped = faults.is_some();
        let (streams, r_max) = workload(seed, 2, n_values);
        let spec = spec_for(&streams, r_max);
        let ordered = emission_ordered_events(&spec, &streams, n_values);
        let dir = tempdir(tag);
        let registry = Registry::new();
        let persist = PersistConfig::new(&dir).sync(sync);
        let mut cfg = config(1, faults, 0);
        cfg.telemetry = Some(registry.clone());
        let (rt, _) = ShardedRuntime::open(&spec, streams.len(), cfg, persist).unwrap();
        for t in 0..n_values {
            let batch: Batch =
                streams.iter().enumerate().map(|(s, x)| (s as StreamId, x[t])).collect();
            rt.submit_blocking(&batch).unwrap();
        }
        drop(rt.crash());
        if grouped {
            // Fewer group writes than batches proves at least one
            // coalesced multi-batch group landed on disk.
            let groups = registry.counter("stardust_persist_wal_group_writes_total", "").get();
            assert!(groups >= 1, "no group writes recorded");
            assert!(
                groups < n_values as u64,
                "stalled worker never coalesced a group ({groups} writes / {n_values} batches)"
            );
        }
        let clean_wal = std::fs::read(dir.join("shard-0.wal")).unwrap();
        let frames = wal_frames(&clean_wal);
        let total: u64 = frames.iter().map(|f| f.items).sum();
        assert_eq!(total, (streams.len() * n_values) as u64, "every append must be in the WAL");
        WalFixture { dir, spec, streams, n_values, clean_wal, frames, ordered }
    }

    /// The frames that survive damage at `offset`: every frame that
    /// ends at or before it. (A frame containing the offset is the
    /// damaged one; for truncation nothing after the cut survives, and
    /// an offset inside the header keeps no frame at all.)
    fn frames_before(&self, offset: usize) -> &[Frame] {
        let n = self.frames.iter().take_while(|f| f.end <= offset).count();
        &self.frames[..n]
    }

    /// Whether `offset` falls inside the last frame.
    fn in_last_frame(&self, offset: usize) -> bool {
        let start = self.frames.len().checked_sub(2).map(|i| self.frames[i].end);
        offset >= start.unwrap_or(WAL_HEADER_LEN)
    }

    /// Applies `damage` to a scratch copy of the directory and opens
    /// it. On success: asserts the durable watermark is exactly the
    /// predicted complete-record prefix (nothing silently dropped, no
    /// damaged record resurrected), then re-submits the remainder and
    /// checks full event-set equality when `check_equality`. On error:
    /// the error is typed by construction — reaching a `Result` at all
    /// is the no-panic guarantee.
    fn check(&self, case: &str, damage: Damage, check_equality: bool) {
        let scratch = self
            .dir
            .with_file_name(format!("{}-case", self.dir.file_name().unwrap().to_string_lossy()));
        copy_dir(&self.dir, &scratch);
        let wal_path = scratch.join("shard-0.wal");
        let mut bytes = self.clean_wal.clone();
        let (expect_ok, survivors) = match damage {
            Damage::Truncate(at) => {
                bytes.truncate(at);
                // Truncation is always tail damage: recovery keeps the
                // complete-record prefix (a destroyed header keeps
                // nothing — no complete record survives it).
                (true, self.frames_before(at))
            }
            Damage::Flip(at) => {
                bytes[at] ^= 0x01;
                if at < WAL_HEADER_LEN {
                    // Header damage is typed, never guessed around.
                    (false, &[][..])
                } else if self.in_last_frame(at) {
                    // Damage to the final record is a torn tail.
                    (true, self.frames_before(at))
                } else {
                    // Mid-log damage followed by complete records is
                    // data loss — must be a typed error, not a
                    // truncation that buries the survivors.
                    (false, &[][..])
                }
            }
        };
        let expected_durable: u64 = survivors.iter().map(|f| f.items).sum();
        // The last surviving ack is cumulative: that many events were
        // delivered in the previous life, so recovery must suppress
        // exactly that prefix of the emission order.
        let suppressed = survivors.iter().filter_map(|f| f.ack).next_back().unwrap_or(0);
        std::fs::write(&wal_path, &bytes).unwrap();

        let persist = PersistConfig::new(&scratch).sync(SyncPolicy::EveryN(16));
        let opened =
            ShardedRuntime::open(&self.spec, self.streams.len(), config(1, None, 0), persist);
        match opened {
            Ok((rt, report)) => {
                assert!(expect_ok, "{case}: expected a typed error, recovered instead");
                assert_eq!(
                    report.shards[0].durable_appends, expected_durable,
                    "{case}: watermark must equal the checksummed-complete prefix"
                );
                if check_equality {
                    let mut all_events = rt.drain_events();
                    let feed = shard_feed(&self.streams, self.n_values, 0, 1);
                    for &(stream, value) in &feed[expected_durable as usize..] {
                        rt.append_blocking(stream, value).unwrap();
                    }
                    all_events.extend(rt.shutdown().events);
                    sort_events(&mut all_events);
                    let mut expected = self.ordered[suppressed as usize..].to_vec();
                    sort_events(&mut expected);
                    assert_eq!(
                        all_events, expected,
                        "{case}: recovered + resubmitted events diverged \
                         (suppressed={suppressed})"
                    );
                } else {
                    drop(rt.crash());
                }
            }
            Err(e) => {
                assert!(!expect_ok, "{case}: expected recovery, got {e}");
            }
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

#[derive(Debug, Clone, Copy)]
enum Damage {
    Truncate(usize),
    Flip(usize),
}

mod wal_damage {
    use super::*;
    use proptest::prelude::*;

    fn fixture() -> &'static WalFixture {
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<WalFixture> = OnceLock::new();
        FIXTURE.get_or_init(|| WalFixture::build("prop", 21, 96))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Sampled sweep: damage the WAL anywhere; `open()` recovers
        /// the exact complete-record prefix or fails typed. Event-set
        /// equality is re-proven on every recovered case.
        #[test]
        fn open_recovers_exactly_or_fails_typed(
            offset in 0usize..4096,
            flip in any::<bool>(),
        ) {
            let fx = fixture();
            let offset = offset % fx.clean_wal.len();
            let damage = if flip { Damage::Flip(offset) } else { Damage::Truncate(offset) };
            fx.check(&format!("{damage:?}"), damage, true);
        }
    }
}

/// Crash-mid-group sweep: the fixture WAL was written by coalesced
/// multi-batch group commits under `SyncPolicy::Always` (asserted, not
/// assumed). Killing the process after every byte prefix of that WAL
/// must recover exactly the complete-record prefix the tear left —
/// batches of a torn group that made it to disk whole are applied
/// once, the torn tail is truncated, nothing is duplicated, and
/// `open()` never panics. Event-set equality is re-proven on a stride
/// of offsets (every recovery is still watermark-checked).
#[test]
fn crash_mid_group_prefix_sweep() {
    let fx = WalFixture::build_grouped("midgroup", 23, 48);
    for offset in 0..fx.clean_wal.len() {
        let check_equality = offset % 7 == 0;
        fx.check(&format!("group-truncate@{offset}"), Damage::Truncate(offset), check_equality);
    }
    let _ = std::fs::remove_dir_all(&fx.dir);
}

/// Exhaustive sweep: every byte offset, both damage modes. Run with
/// `cargo test -- --ignored` (the CI persistence job does).
#[test]
#[ignore = "exhaustive; minutes of runtime"]
fn exhaustive_wal_damage_sweep() {
    let fx = WalFixture::build("sweep", 22, 64);
    for offset in 0..fx.clean_wal.len() {
        fx.check(&format!("truncate@{offset}"), Damage::Truncate(offset), false);
        fx.check(&format!("flip@{offset}"), Damage::Flip(offset), false);
    }
    let _ = std::fs::remove_dir_all(&fx.dir);
}

/// Multi-seed stress: random workloads under every disk-fault kind,
/// crash/reopen/re-submit, full event-set equality each time. Run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "multi-seed stress; minutes of runtime"]
fn multi_seed_disk_fault_storm() {
    for seed in 0..8u64 {
        let n_values = 192 + 16 * seed as usize;
        let (streams, r_max) = workload(100 + seed, 4, n_values);
        let spec = spec_for(&streams, r_max);
        let reference = reference_events(&spec, &streams, n_values);
        let kinds: Vec<FaultPlan> = vec![
            FaultPlan::new().disk_fault(0, DiskFaultKind::TornWrite { at_byte: 400 + 64 * seed }),
            FaultPlan::new().disk_fault(1, DiskFaultKind::FailFsync { nth: seed % 3 }),
            FaultPlan::new()
                .disk_fault(0, DiskFaultKind::TornWrite { at_byte: 700 })
                .disk_fault(1, DiskFaultKind::FailFsync { nth: 1 }),
        ];
        for (k, plan) in kinds.into_iter().enumerate() {
            let dir = tempdir(&format!("storm-{seed}-{k}"));
            let events = crash_reopen_resubmit(
                &dir,
                &spec,
                &streams,
                n_values,
                2,
                SyncPolicy::EveryN(8),
                Some(Arc::new(plan)),
                48,
            );
            assert_eq!(events, reference, "seed {seed} fault {k} diverged");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
