//! The multi-resolution summarizer — Algorithm 1 of the paper.
//!
//! For each arriving value, features are computed at every due resolution
//! level, **bottom-up**: level 0 from the raw window (incrementally for the
//! aggregate transforms), level `j ≥ 1` from the MBRs at level `j−1` that
//! contain the features of the window's two halves (Lemmas 4.1 / 4.2).
//! Every `c` consecutive features are combined into an MBR; sealed MBRs are
//! announced to the caller (the engine inserts them into the per-level
//! R\*-tree) and retired once they fall out of the history of interest.
//!
//! Per-item cost: Θ(1) amortized for the aggregate transforms at level 0
//! (running sum / monotonic deques), Θ(f) per due level above it
//! (Theorem 4.3); space Θ(2^{j−1}·W / (c·T_{j−1})) at level `j−1`.

use std::collections::VecDeque;

use stardust_dsp::haar;
use stardust_dsp::mbr_transform::Bounds;

use crate::config::Config;
use crate::mbr::FeatureMbr;
use crate::snapshot::{self, SnapshotError};
use crate::stream::{StreamHistory, Time};
use crate::telemetry::SummarizerTelemetry;
use crate::transform::{MergePrecision, TransformKind};

/// Change notification emitted by [`StreamSummary::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryEvent {
    /// An MBR reached its box capacity and is ready for indexing.
    Sealed {
        /// Resolution level of the MBR.
        level: usize,
        /// The sealed MBR.
        mbr: FeatureMbr,
    },
    /// A previously sealed MBR fell out of the history of interest.
    Retired {
        /// Resolution level of the MBR.
        level: usize,
        /// The retired MBR (identical to the one sealed earlier).
        mbr: FeatureMbr,
    },
}

/// Per-level summary state: the open MBR plus the threaded deque of sealed
/// MBRs, oldest first ("the MBRs belonging to a specific stream are
/// threaded together", §4).
#[derive(Debug, Clone)]
struct LevelState {
    window: usize,
    period: u64,
    open: Option<FeatureMbr>,
    sealed: VecDeque<FeatureMbr>,
}

impl LevelState {
    /// The MBR (sealed or open) containing the feature with time `t`.
    fn find(&self, t: Time) -> Option<&FeatureMbr> {
        if let Some(open) = &self.open {
            if open.covers(t) {
                return Some(open);
            }
        }
        // First sealed MBR starting after t, then step back one.
        let idx = self.sealed.partition_point(|m| m.first <= t);
        let candidate = self.sealed.get(idx.checked_sub(1)?)?;
        candidate.covers(t).then_some(candidate)
    }
}

/// Incremental sliding max/min over the base window, via monotonic deques
/// (amortized Θ(1) per item).
#[derive(Debug, Clone, Default)]
struct MonotonicDeques {
    maxd: VecDeque<(Time, f64)>,
    mind: VecDeque<(Time, f64)>,
}

impl MonotonicDeques {
    fn push(&mut self, t: Time, x: f64, window: usize) {
        while self.maxd.back().is_some_and(|&(_, v)| v <= x) {
            self.maxd.pop_back();
        }
        self.maxd.push_back((t, x));
        while self.mind.back().is_some_and(|&(_, v)| v >= x) {
            self.mind.pop_back();
        }
        self.mind.push_back((t, x));
        let cutoff = t + 1 - (window as u64).min(t + 1);
        while self.maxd.front().is_some_and(|&(ft, _)| ft < cutoff) {
            self.maxd.pop_front();
        }
        while self.mind.front().is_some_and(|&(ft, _)| ft < cutoff) {
            self.mind.pop_front();
        }
    }

    fn max(&self) -> f64 {
        self.maxd.front().expect("nonempty window").1
    }

    fn min(&self) -> f64 {
        self.mind.front().expect("nonempty window").1
    }
}

/// The multi-resolution summary of a single stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    config: Config,
    precision: MergePrecision,
    history: StreamHistory,
    levels: Vec<LevelState>,
    deques: MonotonicDeques,
    /// Running sum / sum of squares over the current base window.
    run_sum: f64,
    run_sumsq: f64,
    scratch: Vec<f64>,
    /// Lifecycle counters; detached (free) by default. Deliberately not
    /// serialized: a restored summary comes back detached and the owner
    /// re-attaches. Clones share the counter cells, so the per-stream
    /// summaries of one monitor aggregate into one series.
    telemetry: SummarizerTelemetry,
}

impl StreamSummary {
    /// A fresh summary for the given configuration (validated here).
    pub fn new(config: Config) -> Self {
        Self::with_precision(config, MergePrecision::Fast)
    }

    /// A fresh summary with an explicit DWT merge precision (Appendix A
    /// ablation).
    pub fn with_precision(config: Config, precision: MergePrecision) -> Self {
        config.validate();
        let levels = (0..config.levels)
            .map(|j| LevelState {
                window: config.window_at(j),
                period: config.update.period(j, config.base_window),
                open: None,
                sealed: VecDeque::new(),
            })
            .collect();
        // +1 so the value leaving the base window (t − W) is still readable
        // when time t is pushed.
        let history = StreamHistory::new(config.history + 1);
        StreamSummary {
            config,
            precision,
            history,
            levels,
            deques: MonotonicDeques::default(),
            run_sum: 0.0,
            run_sumsq: 0.0,
            scratch: Vec::new(),
            telemetry: SummarizerTelemetry::default(),
        }
    }

    /// Attaches lifecycle counters; pass
    /// [`SummarizerTelemetry::default`] to detach.
    pub fn set_telemetry(&mut self, telemetry: SummarizerTelemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration this summary was built with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The raw-value history (for verification and ground truth).
    pub fn history(&self) -> &StreamHistory {
        &self.history
    }

    /// Time of the most recent value, `None` before the first push.
    pub fn now(&self) -> Option<Time> {
        self.history.latest_time()
    }

    /// The MBR at `level` containing the feature with time `t` (its window
    /// is `x[t − W·2^level + 1 : t]`).
    pub fn mbr_at(&self, level: usize, t: Time) -> Option<&FeatureMbr> {
        self.levels.get(level)?.find(t)
    }

    /// Iterates over the sealed MBRs at a level, oldest first.
    pub fn sealed_mbrs(&self, level: usize) -> impl Iterator<Item = &FeatureMbr> {
        self.levels[level].sealed.iter()
    }

    /// The currently open (unsealed) MBR at a level, if any.
    pub fn open_mbr(&self, level: usize) -> Option<&FeatureMbr> {
        self.levels[level].open.as_ref()
    }

    /// Total MBRs retained across all levels — the space accounting of
    /// Theorem 4.3.
    pub fn retained_mbrs(&self) -> usize {
        self.levels.iter().map(|l| l.sealed.len() + usize::from(l.open.is_some())).sum()
    }

    /// Serializes the full summary state — configuration, raw history,
    /// and every open/sealed MBR — into a self-describing byte buffer.
    /// Restoring with [`StreamSummary::restore`] yields a summary whose
    /// future behaviour is identical to the uninterrupted original.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = snapshot::Writer::new();
        snapshot::encode_config(&mut w, &self.config);
        snapshot::encode_precision(&mut w, self.precision);
        let (capacity, next, buf) = self.history.raw_parts();
        w.usize(capacity);
        w.u64(next);
        w.f64_slice(buf);
        w.f64(self.run_sum);
        w.f64(self.run_sumsq);
        let encode_deque = |w: &mut snapshot::Writer, dq: &VecDeque<(Time, f64)>| {
            w.usize(dq.len());
            for &(t, v) in dq {
                w.u64(t);
                w.f64(v);
            }
        };
        encode_deque(&mut w, &self.deques.maxd);
        encode_deque(&mut w, &self.deques.mind);
        w.usize(self.levels.len());
        for level in &self.levels {
            match &level.open {
                None => w.u8(0),
                Some(m) => {
                    w.u8(1);
                    snapshot::encode_mbr(&mut w, m);
                }
            }
            w.usize(level.sealed.len());
            for m in &level.sealed {
                snapshot::encode_mbr(&mut w, m);
            }
        }
        w.finish()
    }

    /// Rebuilds a summary from a [`StreamSummary::snapshot`] buffer. The
    /// level-0 derived state (running moments, sliding max/min deques) is
    /// reconstructed from the restored raw history.
    ///
    /// # Errors
    /// Returns [`SnapshotError`] on malformed, truncated, or inconsistent
    /// input; no partially restored summary is ever produced.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = snapshot::Reader::new(bytes)?;
        let config = snapshot::decode_config(&mut r)?;
        config.check().map_err(|_| SnapshotError::Corrupt("invalid configuration"))?;
        let precision = snapshot::decode_precision(&mut r)?;
        let capacity = r.usize()?;
        if capacity != config.history + 1 {
            return Err(SnapshotError::Corrupt("history capacity mismatch"));
        }
        let next = r.u64()?;
        let buf = r.f64_vec()?;
        let history = StreamHistory::from_raw_parts(capacity, next, buf)
            .map_err(|_| SnapshotError::Corrupt("inconsistent history ring"))?;
        let run_sum = r.f64()?;
        let run_sumsq = r.f64()?;
        let decode_deque =
            |r: &mut snapshot::Reader<'_>| -> Result<VecDeque<(Time, f64)>, SnapshotError> {
                let n = r.count(16)?;
                let mut dq = VecDeque::with_capacity(n);
                let mut prev: Option<Time> = None;
                for _ in 0..n {
                    let t = r.u64()?;
                    if t >= next || prev.is_some_and(|p| t <= p) {
                        return Err(SnapshotError::Corrupt("deque times out of order"));
                    }
                    prev = Some(t);
                    dq.push_back((t, r.f64()?));
                }
                Ok(dq)
            };
        let maxd = decode_deque(&mut r)?;
        let mind = decode_deque(&mut r)?;
        let n_levels = r.usize()?;
        if n_levels != config.levels {
            return Err(SnapshotError::Corrupt("level count mismatch"));
        }
        let dims = config.transform.dims(config.dwt_coeffs);
        let mut levels = Vec::with_capacity(n_levels);
        for j in 0..n_levels {
            let period = config.update.period(j, config.base_window);
            let read_checked = |r: &mut snapshot::Reader<'_>| -> Result<FeatureMbr, SnapshotError> {
                let m = snapshot::decode_mbr(r)?;
                if m.bounds.dims() != dims {
                    return Err(SnapshotError::Corrupt("MBR dimensionality mismatch"));
                }
                if m.period != period {
                    return Err(SnapshotError::Corrupt("MBR period mismatch"));
                }
                if m.last() >= next {
                    return Err(SnapshotError::Corrupt("MBR from the future"));
                }
                Ok(m)
            };
            let open = match r.u8()? {
                0 => None,
                1 => {
                    let m = read_checked(&mut r)?;
                    if m.count >= config.box_capacity {
                        return Err(SnapshotError::Corrupt("open MBR at or over capacity"));
                    }
                    Some(m)
                }
                _ => return Err(SnapshotError::Corrupt("open tag")),
            };
            let n_sealed = r.count(64)?;
            let mut sealed = VecDeque::with_capacity(n_sealed);
            let mut prev_last: Option<Time> = None;
            for _ in 0..n_sealed {
                let m = read_checked(&mut r)?;
                if let Some(pl) = prev_last {
                    if m.first <= pl {
                        return Err(SnapshotError::Corrupt("sealed MBRs out of order"));
                    }
                }
                prev_last = Some(m.last());
                sealed.push_back(m);
            }
            levels.push(LevelState { window: config.window_at(j), period, open, sealed });
        }
        r.expect_end()?;
        Ok(StreamSummary {
            config,
            precision,
            history,
            levels,
            deques: MonotonicDeques { maxd, mind },
            run_sum,
            run_sumsq,
            scratch: Vec::new(),
            telemetry: SummarizerTelemetry::default(),
        })
    }

    /// Appends one value, updating every due level bottom-up (Algorithm 1).
    /// Sealed/retired MBRs are appended to `events`.
    pub fn push(&mut self, value: f64, events: &mut Vec<SummaryEvent>) {
        self.telemetry.appends.inc();
        let first_new = events.len();
        let w0 = self.config.base_window;
        let t = self.history.push(value);
        // Level-0 incremental state.
        self.run_sum += value;
        self.run_sumsq += value * value;
        if t >= w0 as u64 {
            let old =
                self.history.get(t - w0 as u64).expect("history capacity covers the base window");
            self.run_sum -= old;
            self.run_sumsq -= old * old;
        }
        match self.config.transform {
            TransformKind::Max | TransformKind::Min | TransformKind::Spread => {
                self.deques.push(t, value, w0);
            }
            TransformKind::Sum | TransformKind::Dwt => {}
        }

        for j in 0..self.config.levels {
            let period = self.levels[j].period;
            let window = self.levels[j].window as u64;
            if !(t + 1).is_multiple_of(period) || t + 1 < window {
                continue;
            }
            let (bounds, sum, sumsq) = if j == 0 {
                self.level0_feature(t)
            } else if self.config.compute == crate::config::ComputeMode::Direct {
                // MR-Index-style maintenance: recompute the transform from
                // the raw window at every level (Θ(w_j) per item) — exact,
                // but without Stardust's incremental savings.
                self.direct_feature(j, t)
            } else {
                let half = self.levels[j - 1].window as u64;
                let (lower, _upper) = self.levels.split_at(j);
                let prev = &lower[j - 1];
                let Some(left) = prev.find(t - half) else { continue };
                let Some(right) = prev.find(t) else { continue };
                let merged =
                    self.config.transform.merge_bounds(&left.bounds, &right.bounds, self.precision);
                let sum = (left.sum.0 + right.sum.0, left.sum.1 + right.sum.1);
                let sumsq = (left.sumsq.0 + right.sumsq.0, left.sumsq.1 + right.sumsq.1);
                (merged, sum, sumsq)
            };
            self.insert_feature(j, bounds, sum, sumsq, t, events);
        }
        self.retire(t, events);
        if self.telemetry.sealed.is_enabled() {
            for e in &events[first_new..] {
                match e {
                    SummaryEvent::Sealed { .. } => self.telemetry.sealed.inc(),
                    SummaryEvent::Retired { .. } => self.telemetry.retired.inc(),
                }
            }
        }
    }

    /// Convenience wrapper discarding events.
    pub fn push_quiet(&mut self, value: f64) {
        let mut events = Vec::new();
        self.push(value, &mut events);
    }

    /// Appends a batch of values; equivalent to calling [`Self::push`]
    /// once per value with the same `events` buffer. The batched form
    /// amortizes the per-call dispatch for the runtime's queue drain.
    pub fn push_all(&mut self, values: &[f64], events: &mut Vec<SummaryEvent>) {
        for &value in values {
            self.push(value, events);
        }
    }

    /// Direct (non-incremental) feature of the level-`j` window ending at
    /// `t` — the `ComputeMode::Direct` path.
    fn direct_feature(&mut self, level: usize, t: Time) -> (Bounds, (f64, f64), (f64, f64)) {
        let w = self.levels[level].window;
        let mut buf = std::mem::take(&mut self.scratch);
        let ok = self.history.copy_window(t, w, &mut buf);
        debug_assert!(ok, "window must be in history");
        let coords = self.config.transform.compute(&buf, self.config.dwt_coeffs);
        let sum: f64 = buf.iter().sum();
        let sumsq: f64 = buf.iter().map(|v| v * v).sum();
        self.scratch = buf;
        (Bounds::point(&coords), (sum, sum), (sumsq, sumsq))
    }

    fn level0_feature(&mut self, t: Time) -> (Bounds, (f64, f64), (f64, f64)) {
        let w0 = self.config.base_window;
        let coords: Vec<f64> = match self.config.transform {
            TransformKind::Sum => vec![self.run_sum],
            TransformKind::Max => vec![self.deques.max()],
            TransformKind::Min => vec![self.deques.min()],
            TransformKind::Spread => vec![self.deques.max(), self.deques.min()],
            TransformKind::Dwt => {
                let mut buf = std::mem::take(&mut self.scratch);
                let ok = self.history.copy_window(t, w0, &mut buf);
                debug_assert!(ok, "base window must be in history");
                let coeffs = haar::approx(&buf, self.config.dwt_coeffs);
                self.scratch = buf;
                coeffs
            }
        };
        (Bounds::point(&coords), (self.run_sum, self.run_sum), (self.run_sumsq, self.run_sumsq))
    }

    fn insert_feature(
        &mut self,
        level: usize,
        bounds: Bounds,
        sum: (f64, f64),
        sumsq: (f64, f64),
        t: Time,
        events: &mut Vec<SummaryEvent>,
    ) {
        let capacity = self.config.box_capacity;
        let st = &mut self.levels[level];
        match &mut st.open {
            None => {
                st.open = Some(FeatureMbr::first(bounds, sum, sumsq, t, st.period));
            }
            Some(m) => m.absorb(&bounds, sum, sumsq, t),
        }
        if st.open.as_ref().map(|m| m.count) == Some(capacity) {
            let mbr = st.open.take().expect("just checked");
            events.push(SummaryEvent::Sealed { level, mbr: mbr.clone() });
            st.sealed.push_back(mbr);
        }
    }

    fn retire(&mut self, t: Time, events: &mut Vec<SummaryEvent>) {
        let horizon = t.saturating_sub(self.config.history as u64);
        for (level, st) in self.levels.iter_mut().enumerate() {
            while st.sealed.front().is_some_and(|m| m.last() < horizon) {
                let mbr = st.sealed.pop_front().expect("just checked");
                events.push(SummaryEvent::Retired { level, mbr });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdatePolicy;

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.17).sin() * 10.0 + (i % 13) as f64).collect()
    }

    /// Online mode with c = 1 must reproduce the direct transform exactly
    /// at every level and every time step.
    #[test]
    fn online_exact_matches_direct_all_kinds() {
        let data = series(300);
        for kind in [
            TransformKind::Sum,
            TransformKind::Max,
            TransformKind::Min,
            TransformKind::Spread,
            TransformKind::Dwt,
        ] {
            let base = if kind == TransformKind::Dwt { 8 } else { 10 };
            let mut cfg = Config::online(kind, base, 4, 1);
            cfg.dwt_coeffs = 4;
            cfg.history = cfg.max_window() * 2;
            let mut s = StreamSummary::new(cfg.clone());
            for (i, &x) in data.iter().enumerate() {
                s.push_quiet(x);
                let t = i as u64;
                for j in 0..cfg.levels {
                    let w = cfg.window_at(j);
                    if i + 1 < w {
                        continue;
                    }
                    let mbr = s
                        .mbr_at(j, t)
                        .unwrap_or_else(|| panic!("{kind:?} missing level {j} at t={t}"));
                    let direct = kind.compute(&data[i + 1 - w..=i], cfg.dwt_coeffs);
                    for (d, (lo, hi)) in
                        direct.iter().zip(mbr.bounds.lo().iter().zip(mbr.bounds.hi()))
                    {
                        assert!(
                            (d - lo).abs() < 1e-7 && (d - hi).abs() < 1e-7,
                            "{kind:?} level {j} t={t}: direct {direct:?} vs [{:?}, {:?}]",
                            mbr.bounds.lo(),
                            mbr.bounds.hi()
                        );
                    }
                }
            }
        }
    }

    /// With c > 1 the MBR extent must always contain the true feature
    /// (Lemma 4.2 conservativeness, end to end).
    #[test]
    fn online_boxes_contain_true_features() {
        let data = series(400);
        for kind in [TransformKind::Sum, TransformKind::Spread, TransformKind::Dwt] {
            let base = if kind == TransformKind::Dwt { 8 } else { 10 };
            let mut cfg = Config::online(kind, base, 4, 5);
            cfg.dwt_coeffs = 4;
            cfg.history = cfg.max_window() * 2;
            let mut s = StreamSummary::new(cfg.clone());
            for (i, &x) in data.iter().enumerate() {
                s.push_quiet(x);
                let t = i as u64;
                for j in 0..cfg.levels {
                    let w = cfg.window_at(j);
                    if i + 1 < w {
                        continue;
                    }
                    let mbr = s.mbr_at(j, t).expect("feature exists");
                    let direct = kind.compute(&data[i + 1 - w..=i], cfg.dwt_coeffs);
                    assert!(
                        mbr.bounds.contains(&direct, 1e-7),
                        "{kind:?} level {j} t={t}: {direct:?} outside box"
                    );
                }
            }
        }
    }

    /// Moment intervals must contain the true window sum / sum of squares.
    #[test]
    fn moment_intervals_contain_truth() {
        let data = series(300);
        let mut cfg = Config::online(TransformKind::Sum, 10, 3, 4);
        cfg.history = cfg.max_window() * 2;
        let mut s = StreamSummary::new(cfg.clone());
        for (i, &x) in data.iter().enumerate() {
            s.push_quiet(x);
            for j in 0..cfg.levels {
                let w = cfg.window_at(j);
                if i + 1 < w {
                    continue;
                }
                let mbr = s.mbr_at(j, i as u64).expect("feature exists");
                let win = &data[i + 1 - w..=i];
                let sum: f64 = win.iter().sum();
                let sumsq: f64 = win.iter().map(|v| v * v).sum();
                assert!(mbr.sum.0 - 1e-7 <= sum && sum <= mbr.sum.1 + 1e-7);
                assert!(mbr.sumsq.0 - 1e-7 <= sumsq && sumsq <= mbr.sumsq.1 + 1e-7);
            }
        }
    }

    /// Batch mode computes features only every W steps, matching the
    /// direct transform at aligned times.
    #[test]
    fn batch_mode_alignment_and_exactness() {
        let data = series(512);
        let cfg = Config::batch(16, 3, 4, 1.0).with_history(256);
        let mut s = StreamSummary::new(cfg.clone());
        for (i, &x) in data.iter().enumerate() {
            s.push_quiet(x);
            let t = i as u64;
            for j in 0..cfg.levels {
                let w = cfg.window_at(j);
                let due = (i + 1) % 16 == 0 && i + 1 >= w;
                let found = s.mbr_at(j, t).is_some();
                assert_eq!(found, due, "level {j} t={t}");
                if due {
                    let mbr = s.mbr_at(j, t).unwrap();
                    let direct = TransformKind::Dwt.compute(&data[i + 1 - w..=i], 4);
                    for (d, lo) in direct.iter().zip(mbr.bounds.lo()) {
                        assert!((d - lo).abs() < 1e-7);
                    }
                }
            }
        }
    }

    /// SWAT policy: level j updates every 2^j steps.
    #[test]
    fn swat_policy_update_times() {
        let mut cfg = Config::online(TransformKind::Sum, 4, 3, 1);
        cfg.update = UpdatePolicy::Swat;
        cfg.history = 64;
        let mut s = StreamSummary::new(cfg.clone());
        for i in 0..64usize {
            s.push_quiet(i as f64);
            let t = i as u64;
            for j in 0..3 {
                let due = (i + 1) % (1 << j) == 0 && i + 1 >= cfg.window_at(j);
                assert_eq!(s.mbr_at(j, t).is_some(), due, "level {j} t={t}");
            }
        }
    }

    /// Sealed and retired events bracket the MBR lifecycle; retained space
    /// stays bounded.
    #[test]
    fn lifecycle_events_and_space_bound() {
        let cfg = Config::online(TransformKind::Sum, 8, 3, 4).with_history(64);
        let mut s = StreamSummary::new(cfg.clone());
        let mut events = Vec::new();
        let mut sealed = 0usize;
        let mut retired = 0usize;
        for i in 0..2000 {
            events.clear();
            s.push(i as f64, &mut events);
            for e in &events {
                match e {
                    SummaryEvent::Sealed { .. } => sealed += 1,
                    SummaryEvent::Retired { .. } => retired += 1,
                }
            }
        }
        assert!(sealed > 0 && retired > 0);
        assert!(sealed >= retired);
        // Retained MBRs: per level about history/(c·T) plus slack.
        assert!(s.retained_mbrs() <= 3 * (64 / 4 + 3), "retained {} MBRs", s.retained_mbrs());
        // Everything sealed is eventually retired or still retained.
        let still: usize = (0..3).map(|j| s.sealed_mbrs(j).count()).sum();
        assert_eq!(sealed, retired + still);
    }

    /// MBRs older than the history horizon are unreachable.
    #[test]
    fn retirement_horizon() {
        let cfg = Config::online(TransformKind::Sum, 4, 2, 2).with_history(32);
        let mut s = StreamSummary::new(cfg);
        for i in 0..200 {
            s.push_quiet(i as f64);
        }
        let t = s.now().unwrap();
        assert!(s.mbr_at(0, t).is_some() || s.open_mbr(0).is_some());
        assert!(s.mbr_at(0, t - 20).is_some());
        assert!(s.mbr_at(0, t - 40).is_none(), "beyond horizon must be retired");
    }

    /// Querying a time with no feature (misaligned or warm-up) is None.
    #[test]
    fn missing_feature_lookups() {
        let cfg = Config::batch(8, 2, 2, 1.0).with_history(64);
        let mut s = StreamSummary::new(cfg);
        for i in 0..40 {
            s.push_quiet(i as f64);
        }
        assert!(s.mbr_at(0, 31).is_some());
        assert!(s.mbr_at(0, 30).is_none(), "misaligned time");
        assert!(s.mbr_at(1, 15).is_some());
        assert!(s.mbr_at(1, 7).is_none(), "warm-up period");
        assert!(s.mbr_at(5, 31).is_none(), "level out of range");
    }

    /// Direct (MR-Index-style) computation agrees with the incremental
    /// scheme when features are exact (c = 1).
    #[test]
    fn direct_mode_matches_incremental_with_unit_capacity() {
        let data = series(300);
        let mut cfg = Config::batch(8, 3, 4, 1.0).with_history(64);
        let mut a = StreamSummary::new(cfg.clone());
        cfg.compute = crate::config::ComputeMode::Direct;
        let mut b = StreamSummary::new(cfg.clone());
        for (i, &x) in data.iter().enumerate() {
            a.push_quiet(x);
            b.push_quiet(x);
            for j in 0..3 {
                let (fa, fb) = (a.mbr_at(j, i as u64), b.mbr_at(j, i as u64));
                assert_eq!(fa.is_some(), fb.is_some(), "level {j} t={i}");
                if let (Some(fa), Some(fb)) = (fa, fb) {
                    for (x1, x2) in fa.bounds.lo().iter().zip(fb.bounds.lo()) {
                        assert!((x1 - x2).abs() < 1e-7, "level {j} t={i}");
                    }
                }
            }
        }
    }

    /// Snapshot → restore → keep feeding: the restored summary must be
    /// indistinguishable from the uninterrupted one, for every transform
    /// and policy.
    #[test]
    fn snapshot_restore_is_transparent() {
        let data = series(500);
        for kind in [TransformKind::Sum, TransformKind::Spread, TransformKind::Dwt] {
            for policy in [UpdatePolicy::Online, UpdatePolicy::Batch, UpdatePolicy::Swat] {
                let base = 8usize;
                let mut cfg = Config::online(kind, base, 3, 4);
                cfg.update = policy;
                cfg.dwt_coeffs = 4;
                cfg.history = cfg.max_window() * 2;
                let mut original = StreamSummary::new(cfg.clone());
                // Feed a prefix, snapshot mid-stream (not at a boundary).
                for &x in &data[..233] {
                    original.push_quiet(x);
                }
                let bytes = original.snapshot();
                let mut restored = StreamSummary::restore(&bytes)
                    .unwrap_or_else(|e| panic!("{kind:?}/{policy:?}: {e}"));
                // Feed the rest into both; every event and lookup agrees.
                let mut ev_a = Vec::new();
                let mut ev_b = Vec::new();
                for (off, &x) in data[233..].iter().enumerate() {
                    ev_a.clear();
                    ev_b.clear();
                    original.push(x, &mut ev_a);
                    restored.push(x, &mut ev_b);
                    assert_eq!(ev_a, ev_b, "{kind:?}/{policy:?} events diverge at +{off}");
                    let t = (233 + off) as u64;
                    for j in 0..3 {
                        assert_eq!(
                            original.mbr_at(j, t),
                            restored.mbr_at(j, t),
                            "{kind:?}/{policy:?} level {j} at t={t}"
                        );
                    }
                }
                assert_eq!(original.retained_mbrs(), restored.retained_mbrs());
            }
        }
    }

    /// Restore rejects malformed input instead of panicking.
    #[test]
    fn restore_rejects_garbage() {
        use crate::snapshot::SnapshotError;
        assert_eq!(StreamSummary::restore(b"garbage!").unwrap_err(), SnapshotError::BadMagic);
        let cfg = Config::online(TransformKind::Sum, 8, 3, 4).with_history(64);
        let mut s = StreamSummary::new(cfg);
        for i in 0..100 {
            s.push_quiet(i as f64);
        }
        let good = s.snapshot();
        // Truncations at every prefix length must error, never panic.
        for cut in (8..good.len()).step_by(7) {
            assert!(StreamSummary::restore(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Single-byte corruptions must error or produce a valid summary,
        // never panic. (Flips in raw f64 payload can be benign.)
        for i in (8..good.len()).step_by(11) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = StreamSummary::restore(&bad);
        }
    }

    /// Monotonic deques agree with brute-force sliding max/min.
    #[test]
    fn monotonic_deques_match_bruteforce() {
        let data = series(200);
        let w = 7;
        let mut dq = MonotonicDeques::default();
        for (i, &x) in data.iter().enumerate() {
            dq.push(i as u64, x, w);
            let start = i.saturating_sub(w - 1);
            let win = &data[start..=i];
            let mx = win.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mn = win.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(dq.max(), mx, "t={i}");
            assert_eq!(dq.min(), mn, "t={i}");
        }
    }
}
