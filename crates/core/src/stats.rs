//! Statistical primitives: normal CDF / quantiles, moments, and the
//! threshold-training procedure of §6.1.
//!
//! Equations 4–7 of the paper analyze the false-alarm rate of the
//! monitoring schemes through the standard normal distribution; the
//! experiments set per-window thresholds to `μ + λσ` of a training prefix.
//! Both are implemented here without external dependencies: `Φ` via the
//! Abramowitz–Stegun erf approximation and `Φ⁻¹` via Acklam's rational
//! approximation refined with one Halley step.

/// The error function `erf(x)`, Abramowitz–Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `φ(x)`.
pub fn phi_density(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` (Acklam's approximation plus one
/// Halley refinement step; relative error below 1e-9 on (0, 1)).
///
/// # Panics
/// Panics if `p` is not strictly inside (0, 1).
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the high-accuracy CDF.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Sample mean of a slice; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice; zero for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Trains the alarm threshold for window size `w` on a training prefix
/// (§6.1): slides a window of size `w` over `training`, applies `agg` to
/// each window position to obtain the series `y`, and returns
/// `μ_y + λ·σ_y`.
///
/// Returns `None` if the training data is shorter than `w`.
pub fn train_threshold<F>(training: &[f64], w: usize, lambda: f64, agg: F) -> Option<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    if w == 0 || training.len() < w {
        return None;
    }
    let ys: Vec<f64> = training.windows(w).map(agg).collect();
    Some(mean(&ys) + lambda * std_dev(&ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // The A&S polynomial's coefficients sum to 1 only to ~1e-9.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn phi_reference_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.841344746).abs() < 1e-6);
        assert!((phi(-1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn phi_inv_roundtrip() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-6, "p={p}: phi(phi_inv(p))={}", phi(x));
        }
    }

    #[test]
    fn phi_inv_symmetry() {
        for &p in &[0.01, 0.2, 0.35] {
            assert!((phi_inv(p) + phi_inv(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_training_flat_series() {
        // Constant series: every window sum is w·k, σ = 0.
        let train = vec![2.0; 100];
        let tau = train_threshold(&train, 10, 5.0, |w| w.iter().sum()).unwrap();
        assert!((tau - 20.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_training_scales_with_lambda() {
        let train: Vec<f64> = (0..200).map(|i| ((i * 31) % 17) as f64).collect();
        let t0 = train_threshold(&train, 8, 0.0, |w| w.iter().sum()).unwrap();
        let t2 = train_threshold(&train, 8, 2.0, |w| w.iter().sum()).unwrap();
        let t5 = train_threshold(&train, 8, 5.0, |w| w.iter().sum()).unwrap();
        assert!(t0 < t2 && t2 < t5);
    }

    #[test]
    fn threshold_training_too_short() {
        assert!(train_threshold(&[1.0, 2.0], 5, 1.0, |w| w.iter().sum()).is_none());
    }

    #[test]
    #[should_panic(expected = "quantile needs p")]
    fn phi_inv_rejects_bounds() {
        let _ = phi_inv(1.0);
    }
}
