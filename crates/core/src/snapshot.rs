//! Checkpoint / restore of summarizer state.
//!
//! A monitoring deployment must survive restarts without losing its
//! windowed history (re-warming a level-J window of size `N` costs `N`
//! arrivals of blindness). [`crate::summarizer::StreamSummary::snapshot`]
//! serializes the full summary — configuration, raw-history ring buffer,
//! and every open/sealed MBR at every level — into a self-describing
//! little-endian byte format; restoring yields a summary whose future
//! outputs are **bit-identical** to the uninterrupted original (verified
//! by property tests).
//!
//! The derived level-0 machinery (running moments, monotonic deques) *is*
//! serialized: the running sums carry the accumulated floating-point
//! rounding of the whole stream, so rebuilding them from the retained
//! history would differ from the uninterrupted original in the last ulp —
//! bit-identical continuation requires carrying them across.

use crate::config::{ComputeMode, Config, UpdatePolicy};
use crate::mbr::FeatureMbr;
use crate::transform::{MergePrecision, TransformKind};
use stardust_dsp::mbr_transform::Bounds;

/// Format magic + version.
pub const MAGIC: &[u8; 8] = b"SDSNAP01";

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic/version.
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A tag or count field held an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a stardust snapshot (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian byte sink.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        let mut w = Writer { buf: Vec::with_capacity(256) };
        w.buf.extend_from_slice(MAGIC);
        w
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64_slice(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// A length-prefixed nested byte blob (e.g. an embedded sub-snapshot
    /// that carries its own magic).
    pub(crate) fn blob(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte source with bounds checking.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Result<Self, SnapshotError> {
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        Ok(Reader { buf, pos: MAGIC.len() })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("oversized count"))
    }

    /// A count that will be used to allocate; bounded against the
    /// remaining input so corrupt lengths cannot trigger huge allocations.
    pub(crate) fn count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n.saturating_mul(elem_size.max(1)) > self.buf.len() - self.pos + 8 {
            return Err(SnapshotError::Corrupt("count exceeds input"));
        }
        Ok(n)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64_vec(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a blob written by [`Writer::blob`].
    pub(crate) fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.count(1)?;
        self.take(n)
    }

    pub(crate) fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("trailing bytes"))
        }
    }
}

pub(crate) fn encode_config(w: &mut Writer, cfg: &Config) {
    w.usize(cfg.base_window);
    w.usize(cfg.levels);
    w.usize(cfg.box_capacity);
    w.usize(cfg.history);
    w.u8(match cfg.transform {
        TransformKind::Sum => 0,
        TransformKind::Max => 1,
        TransformKind::Min => 2,
        TransformKind::Spread => 3,
        TransformKind::Dwt => 4,
    });
    w.usize(cfg.dwt_coeffs);
    w.f64(cfg.r_max);
    w.u8(match cfg.update {
        UpdatePolicy::Online => 0,
        UpdatePolicy::Batch => 1,
        UpdatePolicy::Swat => 2,
    });
    w.u8(match cfg.compute {
        ComputeMode::Incremental => 0,
        ComputeMode::Direct => 1,
    });
}

pub(crate) fn decode_config(r: &mut Reader<'_>) -> Result<Config, SnapshotError> {
    let base_window = r.usize()?;
    let levels = r.usize()?;
    let box_capacity = r.usize()?;
    let history = r.usize()?;
    let transform = match r.u8()? {
        0 => TransformKind::Sum,
        1 => TransformKind::Max,
        2 => TransformKind::Min,
        3 => TransformKind::Spread,
        4 => TransformKind::Dwt,
        _ => return Err(SnapshotError::Corrupt("transform tag")),
    };
    let dwt_coeffs = r.usize()?;
    let r_max = r.f64()?;
    let update = match r.u8()? {
        0 => UpdatePolicy::Online,
        1 => UpdatePolicy::Batch,
        2 => UpdatePolicy::Swat,
        _ => return Err(SnapshotError::Corrupt("update tag")),
    };
    let compute = match r.u8()? {
        0 => ComputeMode::Incremental,
        1 => ComputeMode::Direct,
        _ => return Err(SnapshotError::Corrupt("compute tag")),
    };
    Ok(Config {
        base_window,
        levels,
        box_capacity,
        history,
        transform,
        dwt_coeffs,
        r_max,
        update,
        compute,
    })
}

pub(crate) fn encode_precision(w: &mut Writer, p: MergePrecision) {
    w.u8(match p {
        MergePrecision::Fast => 0,
        MergePrecision::Tight => 1,
    });
}

pub(crate) fn decode_precision(r: &mut Reader<'_>) -> Result<MergePrecision, SnapshotError> {
    match r.u8()? {
        0 => Ok(MergePrecision::Fast),
        1 => Ok(MergePrecision::Tight),
        _ => Err(SnapshotError::Corrupt("precision tag")),
    }
}

pub(crate) fn encode_mbr(w: &mut Writer, m: &FeatureMbr) {
    w.f64_slice(m.bounds.lo());
    w.f64_slice(m.bounds.hi());
    w.f64(m.sum.0);
    w.f64(m.sum.1);
    w.f64(m.sumsq.0);
    w.f64(m.sumsq.1);
    w.u64(m.first);
    w.usize(m.count);
    w.u64(m.period);
}

pub(crate) fn decode_mbr(r: &mut Reader<'_>) -> Result<FeatureMbr, SnapshotError> {
    let lo = r.f64_vec()?;
    let hi = r.f64_vec()?;
    if lo.len() != hi.len() || lo.is_empty() {
        return Err(SnapshotError::Corrupt("bounds arity"));
    }
    for (l, h) in lo.iter().zip(&hi) {
        if !(l.is_finite() && h.is_finite() && l <= h) {
            return Err(SnapshotError::Corrupt("inverted or non-finite bounds"));
        }
    }
    let bounds = Bounds::new(lo, hi);
    let sum = (r.f64()?, r.f64()?);
    let sumsq = (r.f64()?, r.f64()?);
    let first = r.u64()?;
    let count = r.usize()?;
    let period = r.u64()?;
    if count == 0 || period == 0 {
        return Err(SnapshotError::Corrupt("empty MBR"));
    }
    Ok(FeatureMbr { bounds, sum, sumsq, first, count, period })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u64(u64::MAX - 3);
        w.usize(12345);
        w.f64(-0.125);
        w.f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).expect("magic");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        r.expect_end().expect("consumed exactly");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Reader::new(b"NOTSNAP0").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(Reader::new(b"SD").unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(1);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 2);
        let mut r = Reader::new(&bytes).expect("magic intact");
        assert_eq!(r.u64().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn oversized_count_rejected() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).expect("magic");
        assert!(matches!(r.count(8), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn config_roundtrip() {
        let cfg = Config::batch(32, 4, 8, 123.5).with_history(512);
        let mut w = Writer::new();
        encode_config(&mut w, &cfg);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(decode_config(&mut r).unwrap(), cfg);
    }

    #[test]
    fn mbr_roundtrip() {
        let mut m = FeatureMbr::first(
            Bounds::new(vec![1.0, -2.0], vec![1.5, 0.0]),
            (3.0, 4.0),
            (9.0, 16.0),
            42,
            8,
        );
        m.absorb(&Bounds::point(&[0.5, -1.0]), (2.0, 2.0), (4.0, 4.0), 50);
        let mut w = Writer::new();
        encode_mbr(&mut w, &m);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(decode_mbr(&mut r).unwrap(), m);
    }

    #[test]
    fn corrupt_tags_rejected() {
        let mut w = Writer::new();
        let mut cfg_bytes = {
            encode_config(&mut w, &Config::batch(8, 2, 2, 1.0));
            w.finish()
        };
        // The transform tag is at a fixed offset: magic(8) + 4 usizes(32).
        cfg_bytes[8 + 32] = 99;
        let mut r = Reader::new(&cfg_bytes).unwrap();
        assert!(matches!(decode_config(&mut r), Err(SnapshotError::Corrupt("transform tag"))));
    }
}
