//! The "single body" of the paper's vision (§1): one monitor, one
//! per-arrival call, all three query classes.
//!
//! "We envision that all these queries are interconnected in a monitoring
//! infrastructure. […] a general scheme that accommodates all these tasks
//! in a single body has not been addressed. We try to fill this gap by
//! proposing a unified system solution called 'Stardust'."
//!
//! [`UnifiedMonitor`] composes the three monitors behind one builder and
//! one [`UnifiedMonitor::append`], multiplexing their reports into a
//! single [`Event`] stream — the exact shape of the paper's motivating
//! story ("an unusual volatility of a time series may trigger an in-depth
//! trend analysis"): aggregate alarms, trend matches, and correlation
//! reports arrive interleaved, in arrival order, tagged by class.
//!
//! Each query class keeps its own summarizer per stream (they need
//! different transforms and update rates — SUM/SPREAD online for
//! aggregates, DWT online for trends, DWT batch for correlations — exactly
//! as §4 prescribes), so enabling only some classes costs only their
//! share.

use crate::config::{Config, UpdatePolicy};
use crate::error::QueryError;
use crate::query::aggregate::{AggregateMonitor, Alarm, WindowSpec};
use crate::query::correlation::{CorrelatedPair, CorrelationMonitor};
use crate::query::trend::{PatternId, TrendMatch, TrendMonitor};
use crate::snapshot::{Reader, SnapshotError, Writer};
use crate::stream::StreamId;
use crate::transform::TransformKind;

/// One report from the unified monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An aggregate (burst/volatility) alarm on one stream.
    Aggregate {
        /// The alarming stream.
        stream: StreamId,
        /// The alarm details (window, bound, verification).
        alarm: Alarm,
    },
    /// A stream currently matches a registered trend.
    Trend(TrendMatch),
    /// Two streams are (approximately) correlated.
    Correlation(CorrelatedPair),
}

/// Builder for [`UnifiedMonitor`].
#[derive(Debug)]
pub struct Builder {
    base_window: usize,
    levels: usize,
    n_streams: usize,
    r_max: f64,
    aggregate: Option<(TransformKind, Vec<WindowSpec>, usize)>,
    trend: Option<(usize, usize)>,
    correlation: Option<(usize, f64)>,
    correlation_sketch_block: Option<usize>,
}

impl Builder {
    /// Enables aggregate monitoring (SUM for bursts, SPREAD for
    /// volatility) over the given windows with box capacity `c`.
    pub fn aggregates(mut self, kind: TransformKind, specs: Vec<WindowSpec>, c: usize) -> Self {
        self.aggregate = Some((kind, specs, c));
        self
    }

    /// Enables continuous trend monitoring with `f` DWT coefficients and
    /// box capacity `c`. Patterns are registered on the built monitor.
    pub fn trends(mut self, f: usize, c: usize) -> Self {
        self.trend = Some((f, c));
        self
    }

    /// Enables correlation monitoring with `f` feature dimensions and
    /// z-norm distance threshold `radius` over windows of
    /// `W·2^(levels−1)`.
    pub fn correlations(mut self, f: usize, radius: f64) -> Self {
        self.correlation = Some((f, radius));
        self
    }

    /// Overrides the correlation sketch's block granularity (see
    /// [`CorrelationMonitor::with_sketch_block`]). Only meaningful with
    /// [`Self::correlations`] enabled.
    pub fn correlation_sketch_block(mut self, block: usize) -> Self {
        self.correlation_sketch_block = Some(block);
        self
    }

    /// Builds the monitor.
    ///
    /// # Panics
    /// Panics if no query class was enabled or a sub-configuration is
    /// invalid (see the respective monitors).
    pub fn build(self) -> UnifiedMonitor {
        assert!(
            self.aggregate.is_some() || self.trend.is_some() || self.correlation.is_some(),
            "enable at least one query class"
        );
        let aggregates = self.aggregate.map(|(kind, specs, c)| {
            let max_w = specs.iter().map(|s| s.window).max().unwrap_or(self.base_window);
            let history = max_w
                .div_ceil(self.base_window)
                .max(1)
                .next_power_of_two()
                .max(1 << (self.levels - 1))
                * self.base_window;
            let cfg = Config::online(kind, self.base_window, self.levels, c)
                .with_history(history.max(self.base_window << (self.levels - 1)));
            let monitors =
                (0..self.n_streams).map(|_| AggregateMonitor::new(cfg.clone(), &specs)).collect();
            (monitors, specs)
        });
        let trends = self.trend.map(|(f, c)| {
            let mut cfg = Config::batch(self.base_window, self.levels, f, self.r_max)
                .with_history(self.base_window << (self.levels - 1));
            cfg.update = UpdatePolicy::Online;
            cfg.box_capacity = c;
            TrendMonitor::new(cfg, self.n_streams)
        });
        let correlations = self.correlation.map(|(f, radius)| {
            let monitor =
                CorrelationMonitor::new(self.base_window, self.levels, f, radius, self.n_streams);
            match self.correlation_sketch_block {
                Some(block) => monitor.with_sketch_block(block),
                None => monitor,
            }
        });
        UnifiedMonitor { aggregates, trends, correlations }
    }
}

/// A single monitor over `M` streams serving every enabled query class.
pub struct UnifiedMonitor {
    aggregates: Option<(Vec<AggregateMonitor>, Vec<WindowSpec>)>,
    trends: Option<TrendMonitor>,
    correlations: Option<CorrelationMonitor>,
}

impl std::fmt::Debug for UnifiedMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnifiedMonitor")
            .field("aggregates", &self.aggregates.as_ref().map(|(m, specs)| (m.len(), specs)))
            .field("trends", &self.trends)
            .field("correlations", &self.correlations)
            .finish()
    }
}

impl UnifiedMonitor {
    /// Starts a builder over `n_streams` streams, base window `W`, and
    /// the given number of resolution levels. `r_max` bounds the value
    /// range (used by pattern normalization).
    ///
    /// # Panics
    /// Panics on zero streams.
    pub fn builder(base_window: usize, levels: usize, n_streams: usize, r_max: f64) -> Builder {
        assert!(n_streams >= 1, "need at least one stream");
        Builder {
            base_window,
            levels,
            n_streams,
            r_max,
            aggregate: None,
            trend: None,
            correlation: None,
            correlation_sketch_block: None,
        }
    }

    /// Attaches metric handles from `registry` to every enabled query
    /// class: per-class latency histograms, check/candidate/confirmation
    /// counters, summarizer lifecycle counters, and index structural
    /// counters (see DESIGN.md §Observability for the catalogue).
    ///
    /// Telemetry is runtime state — [`Self::snapshot`] never carries it,
    /// and a monitor rebuilt by [`Self::restore`] is detached until this
    /// is called again (the sharded runtime re-attaches after every
    /// crash recovery).
    pub fn attach_telemetry(&mut self, registry: &stardust_telemetry::Registry) {
        if let Some((monitors, _)) = &mut self.aggregates {
            for m in monitors {
                m.attach_telemetry(registry);
            }
        }
        if let Some(trends) = &mut self.trends {
            trends.attach_telemetry(registry);
        }
        if let Some(corr) = &mut self.correlations {
            corr.attach_telemetry(registry);
        }
    }

    /// Registers a trend pattern (requires `trends` to be enabled).
    ///
    /// # Panics
    /// Panics if trend monitoring is not enabled.
    pub fn register_trend(
        &mut self,
        sequence: Vec<f64>,
        radius: f64,
    ) -> Result<PatternId, QueryError> {
        self.trends.as_mut().expect("trend monitoring not enabled").register(sequence, radius)
    }

    /// Appends one value to one stream; returns every event the arrival
    /// produced, across all enabled query classes. Non-finite values
    /// are rejected as a no-op (see [`Self::append_into`]).
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) -> Vec<Event> {
        let mut events = Vec::new();
        self.append_into(stream, value, &mut events);
        events
    }

    /// Appends one value to one stream, pushing the produced events onto
    /// `out` (which is **not** cleared). The allocation-free form of
    /// [`Self::append`]: batch drains reuse one buffer across a whole
    /// batch instead of allocating a `Vec` per value.
    ///
    /// Non-finite values (NaN, ±∞) are rejected as a no-op: a NaN would
    /// poison window sums and distance computations irreversibly, and a
    /// silent ±∞ turns every downstream interval into `[-∞, ∞]`. The
    /// guard lives here — not only at the ingestion boundary — so a
    /// journaled non-finite sample replays as the same no-op and crash
    /// recovery stays deterministic.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append_into(&mut self, stream: StreamId, value: f64, out: &mut Vec<Event>) {
        if !value.is_finite() {
            return;
        }
        if let Some((monitors, _)) = &mut self.aggregates {
            for alarm in monitors[stream as usize].push(value) {
                out.push(Event::Aggregate { stream, alarm });
            }
        }
        if let Some(trends) = &mut self.trends {
            out.extend(trends.append(stream, value).into_iter().map(Event::Trend));
        }
        if let Some(corr) = &mut self.correlations {
            out.extend(corr.append(stream, value).into_iter().map(Event::Correlation));
        }
    }

    /// Appends a batch of (stream, value) pairs in order; the returned
    /// events are exactly the concatenation of the per-item
    /// [`Self::append`] results.
    ///
    /// # Panics
    /// Panics if any stream id is out of range.
    pub fn append_batch(&mut self, items: &[(StreamId, f64)]) -> Vec<Event> {
        let mut events = Vec::new();
        for &(stream, value) in items {
            self.append_into(stream, value, &mut events);
        }
        events
    }

    /// Serializes the whole monitor — every enabled class, every
    /// stream — into one self-describing byte buffer. Restoring with
    /// [`Self::restore`] and continuing to append yields output
    /// bit-identical to the uninterrupted original for every enabled
    /// class (see [`CorrelationMonitor::snapshot`] for why correlation
    /// reports are rebuild-invariant); the sharded runtime builds its
    /// crash-recovery checkpoints out of exactly this buffer.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.aggregates {
            None => w.u8(0),
            Some((monitors, specs)) => {
                w.u8(1);
                w.usize(specs.len());
                for spec in specs {
                    w.usize(spec.window);
                    w.f64(spec.threshold);
                }
                w.usize(monitors.len());
                for m in monitors {
                    w.blob(&m.snapshot());
                }
            }
        }
        match &self.trends {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.blob(&t.snapshot());
            }
        }
        match &self.correlations {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                w.blob(&c.snapshot());
            }
        }
        w.finish()
    }

    /// Rebuilds a monitor from [`Self::snapshot`] bytes.
    ///
    /// # Errors
    /// [`SnapshotError`] on a truncated, corrupt, or inconsistent buffer.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        fn class_tag(r: &mut Reader<'_>) -> Result<bool, SnapshotError> {
            match r.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(SnapshotError::Corrupt("class tag")),
            }
        }
        let mut r = Reader::new(bytes)?;
        let aggregates = if class_tag(&mut r)? {
            let n_specs = r.count(16)?;
            let mut specs = Vec::with_capacity(n_specs);
            for _ in 0..n_specs {
                specs.push(WindowSpec { window: r.usize()?, threshold: r.f64()? });
            }
            let n_monitors = r.count(16)?;
            if n_monitors == 0 {
                return Err(SnapshotError::Corrupt("aggregate class with zero streams"));
            }
            let mut monitors = Vec::with_capacity(n_monitors);
            for _ in 0..n_monitors {
                monitors.push(AggregateMonitor::restore(r.blob()?)?);
            }
            Some((monitors, specs))
        } else {
            None
        };
        let trends =
            if class_tag(&mut r)? { Some(TrendMonitor::restore(r.blob()?)?) } else { None };
        let correlations =
            if class_tag(&mut r)? { Some(CorrelationMonitor::restore(r.blob()?)?) } else { None };
        r.expect_end()?;
        if aggregates.is_none() && trends.is_none() && correlations.is_none() {
            return Err(SnapshotError::Corrupt("no query class enabled"));
        }
        Ok(UnifiedMonitor { aggregates, trends, correlations })
    }

    /// The aggregate monitor of one stream, if enabled.
    pub fn aggregate_monitor(&self, stream: StreamId) -> Option<&AggregateMonitor> {
        self.aggregates.as_ref().map(|(m, _)| &m[stream as usize])
    }

    /// The trend monitor, if enabled.
    pub fn trend_monitor(&self) -> Option<&TrendMonitor> {
        self.trends.as_ref()
    }

    /// The correlation monitor, if enabled.
    pub fn correlation_monitor(&self) -> Option<&CorrelationMonitor> {
        self.correlations.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time guarantee that monitors can be moved into worker
    /// threads (the sharded runtime relies on this). Breaking it — e.g.
    /// by introducing an `Rc` — fails this test at compile time.
    #[test]
    fn monitors_are_send() {
        fn _assert_send<T: Send>() {}
        _assert_send::<UnifiedMonitor>();
        _assert_send::<Builder>();
        _assert_send::<Event>();
    }

    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn all_three_classes_fire_from_one_feed() {
        let specs = vec![WindowSpec { window: 16, threshold: 60.0 }];
        let mut unified = UnifiedMonitor::builder(8, 3, 2, 100.0)
            .aggregates(TransformKind::Sum, specs, 2)
            .trends(4, 4)
            .correlations(4, 0.3)
            .build();
        // A trend: the surge ramp; register before feeding.
        let ramp: Vec<f64> = (0..16).map(|i| 2.0 + i as f64 * 0.5).collect();
        let trend_id = unified.register_trend(ramp.clone(), 0.05).expect("valid");

        let mut seed = 9u64;
        let mut saw_aggregate = false;
        let mut saw_trend = false;
        let mut saw_correlation = false;
        let mut x = 2.0f64;
        for i in 0..400usize {
            // Stream 0: noise, then the ramp surge at i = 300.
            let v0 = if (300..316).contains(&i) {
                ramp[i - 300]
            } else {
                x += (splitmix(&mut seed) - 0.5) * 0.1;
                x.clamp(0.5, 4.0)
            };
            // Stream 1: affine copy of stream 0 => correlated.
            let v1 = 2.0 * v0 + 1.0;
            for ev in unified.append(0, v0).into_iter().chain(unified.append(1, v1)) {
                match ev {
                    Event::Aggregate { alarm, .. } => saw_aggregate |= alarm.is_true_alarm,
                    Event::Trend(m) => saw_trend |= m.pattern == trend_id,
                    Event::Correlation(p) => saw_correlation |= p.correlation.unwrap_or(0.0) > 0.9,
                }
            }
        }
        assert!(saw_trend, "trend event missing");
        assert!(saw_correlation, "correlation event missing");
        assert!(saw_aggregate, "aggregate event missing");
    }

    #[test]
    fn non_finite_samples_are_rejected_as_no_ops() {
        let specs = vec![WindowSpec { window: 4, threshold: 5.0 }];
        let build = || {
            UnifiedMonitor::builder(8, 2, 2, 100.0)
                .aggregates(TransformKind::Sum, specs.clone(), 2)
                .trends(4, 4)
                .correlations(4, 0.3)
                .build()
        };
        let mut poisoned = build();
        let mut clean = build();
        for i in 0..64u32 {
            let v = (i as f64 * 0.4).sin() + 2.0;
            // The poisoned feed interleaves every non-finite flavour.
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert!(poisoned.append(i % 2, bad).is_empty(), "non-finite produced events");
            }
            let a = poisoned.append(i % 2, v);
            let b = clean.append(i % 2, v);
            assert_eq!(a.len(), b.len(), "divergence at sample {i}");
        }
        // Rejected samples leave no trace in the serialized state either.
        assert_eq!(poisoned.snapshot(), clean.snapshot());
    }

    #[test]
    fn partial_configuration_only_produces_enabled_classes() {
        let mut unified = UnifiedMonitor::builder(8, 2, 2, 10.0).correlations(2, 0.5).build();
        assert!(unified.aggregate_monitor(0).is_none());
        assert!(unified.trend_monitor().is_none());
        assert!(unified.correlation_monitor().is_some());
        for i in 0..64 {
            let v = (i as f64 * 0.3).sin();
            for ev in unified.append(0, v).into_iter().chain(unified.append(1, v + 0.1)) {
                assert!(matches!(ev, Event::Correlation(_)));
            }
        }
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let specs = vec![WindowSpec { window: 16, threshold: 60.0 }];
        let build = || {
            let mut m = UnifiedMonitor::builder(8, 3, 2, 100.0)
                .aggregates(TransformKind::Sum, specs.clone(), 2)
                .trends(4, 4)
                .correlations(4, 0.5)
                .build();
            let ramp: Vec<f64> = (0..16).map(|i| 2.0 + i as f64 * 0.5).collect();
            m.register_trend(ramp, 0.05).expect("valid");
            m
        };
        let mut live = build();
        let mut seed = 77u64;
        let value = |seed: &mut u64, s: StreamId| {
            let x = splitmix(seed) * 8.0;
            if s == 0 {
                x
            } else {
                2.0 * x + 1.0
            }
        };
        for _ in 0..137 {
            for s in 0..2 {
                let _ = live.append(s, value(&mut seed, s));
            }
        }
        let mut revived = UnifiedMonitor::restore(&live.snapshot()).expect("restores");
        for _ in 0..200 {
            for s in 0..2 {
                let v = value(&mut seed, s);
                assert_eq!(live.append(s, v), revived.append(s, v));
            }
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(UnifiedMonitor::restore(b"not a snapshot").is_err());
        let m = UnifiedMonitor::builder(8, 2, 2, 10.0).correlations(2, 0.5).build();
        let mut bytes = m.snapshot();
        let n = bytes.len();
        bytes.truncate(n - 3);
        assert!(UnifiedMonitor::restore(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "enable at least one query class")]
    fn empty_configuration_rejected() {
        let _ = UnifiedMonitor::builder(8, 2, 1, 1.0).build();
    }

    #[test]
    #[should_panic(expected = "trend monitoring not enabled")]
    fn registering_without_trends_panics() {
        let specs = vec![WindowSpec { window: 8, threshold: 1.0 }];
        let mut unified =
            UnifiedMonitor::builder(8, 2, 1, 1.0).aggregates(TransformKind::Sum, specs, 1).build();
        let _ = unified.register_trend(vec![0.0; 8], 0.1);
    }
}
