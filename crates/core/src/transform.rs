//! Incremental transforms: the `F` of §4.
//!
//! The transform applied to each sliding window depends on the monitoring
//! query: SUM for burst detection, MAX/MIN (and their difference, SPREAD)
//! for volatility, and the DWT for pattern and correlation queries. All of
//! them support:
//!
//! * **direct computation** on a raw window (level 0 / verification),
//! * **exact merge** (Lemma 4.1): the feature of a window from the features
//!   of its two halves in Θ(f),
//! * **interval merge** (Lemma 4.2): a bounding interval of the feature
//!   from the MBRs containing the halves' features, also Θ(f) (or
//!   Θ(2^{2f}·f) with the tight Online I corner enumeration).

use stardust_dsp::haar;
use stardust_dsp::mbr_transform::Bounds;
use stardust_dsp::FilterBank;

/// Which transform the summarizer applies to each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// Moving sum — burst detection.
    Sum,
    /// Moving maximum.
    Max,
    /// Moving minimum.
    Min,
    /// `MAX − MIN` — volatility detection. Features carry both components
    /// (`[max, min]`); the spread itself is derived on demand.
    Spread,
    /// The first `f` Haar approximation coefficients — pattern and
    /// correlation queries.
    Dwt,
}

/// Accuracy/time trade-off for the DWT interval merge (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePrecision {
    /// *Online II*: transform only the low/high corners via the δ-split.
    /// Θ(f) per merge.
    #[default]
    Fast,
    /// *Online I*: enumerate all corners of the concatenated box.
    /// Θ(2^{2f}·f) per merge; tightest conservative box.
    Tight,
}

impl TransformKind {
    /// Feature dimensionality: 1 for SUM/MAX/MIN, 2 for SPREAD
    /// (`[max, min]`), `f` for the DWT.
    pub fn dims(self, f: usize) -> usize {
        match self {
            TransformKind::Sum | TransformKind::Max | TransformKind::Min => 1,
            TransformKind::Spread => 2,
            TransformKind::Dwt => f,
        }
    }

    /// Direct computation of the (unnormalized) feature of a raw window.
    ///
    /// # Panics
    /// Panics if the window is empty, or (for DWT) if lengths are not
    /// powers of two.
    pub fn compute(self, window: &[f64], f: usize) -> Vec<f64> {
        assert!(!window.is_empty(), "cannot transform an empty window");
        match self {
            TransformKind::Sum => vec![window.iter().sum()],
            TransformKind::Max => vec![window.iter().copied().fold(f64::NEG_INFINITY, f64::max)],
            TransformKind::Min => vec![window.iter().copied().fold(f64::INFINITY, f64::min)],
            TransformKind::Spread => {
                let mx = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mn = window.iter().copied().fold(f64::INFINITY, f64::min);
                vec![mx, mn]
            }
            TransformKind::Dwt => haar::approx(window, f),
        }
    }

    /// **Lemma 4.1** — exact merge: the feature of a window from the
    /// features of its (earlier) left half and (later) right half.
    ///
    /// # Panics
    /// Panics on dimensionality mismatches.
    pub fn merge_exact(self, left: &[f64], right: &[f64]) -> Vec<f64> {
        assert_eq!(left.len(), right.len(), "half feature dimensionality mismatch");
        match self {
            TransformKind::Sum => vec![left[0] + right[0]],
            TransformKind::Max => vec![left[0].max(right[0])],
            TransformKind::Min => vec![left[0].min(right[0])],
            TransformKind::Spread => vec![left[0].max(right[0]), left[1].min(right[1])],
            TransformKind::Dwt => haar::merge_halves(left, right),
        }
    }

    /// **Lemma 4.2** — interval merge: a conservative bounding box of the
    /// merged feature given boxes containing the halves' features.
    ///
    /// # Panics
    /// Panics on dimensionality mismatches.
    pub fn merge_bounds(self, left: &Bounds, right: &Bounds, precision: MergePrecision) -> Bounds {
        assert_eq!(left.dims(), right.dims(), "half bounds dimensionality mismatch");
        match self {
            TransformKind::Sum => {
                Bounds::new(vec![left.lo()[0] + right.lo()[0]], vec![left.hi()[0] + right.hi()[0]])
            }
            TransformKind::Max => Bounds::new(
                vec![left.lo()[0].max(right.lo()[0])],
                vec![left.hi()[0].max(right.hi()[0])],
            ),
            TransformKind::Min => Bounds::new(
                vec![left.lo()[0].min(right.lo()[0])],
                vec![left.hi()[0].min(right.hi()[0])],
            ),
            TransformKind::Spread => Bounds::new(
                vec![left.lo()[0].max(right.lo()[0]), left.lo()[1].min(right.lo()[1])],
                vec![left.hi()[0].max(right.hi()[0]), left.hi()[1].min(right.hi()[1])],
            ),
            TransformKind::Dwt => {
                let concat = left.concat(right);
                let bank = FilterBank::haar();
                match precision {
                    MergePrecision::Fast => concat.analyze_online2(&bank),
                    MergePrecision::Tight => concat.analyze_online1(&bank),
                }
            }
        }
    }

    /// Maps a feature box to the scalar interval `[lo, hi]` bounding the
    /// monitored aggregate: the sum for SUM, max for MAX, min for MIN, and
    /// `max − min` for SPREAD. Returns `None` for the DWT (no scalar
    /// aggregate).
    pub fn aggregate_interval(self, b: &Bounds) -> Option<(f64, f64)> {
        match self {
            TransformKind::Sum | TransformKind::Max | TransformKind::Min => {
                Some((b.lo()[0], b.hi()[0]))
            }
            TransformKind::Spread => Some((b.lo()[0] - b.hi()[1], b.hi()[0] - b.lo()[1])),
            TransformKind::Dwt => None,
        }
    }

    /// The scalar aggregate of a raw window (used for verification and
    /// ground truth): sum, max, min, or spread. Returns `None` for DWT.
    pub fn scalar_aggregate(self, window: &[f64]) -> Option<f64> {
        match self {
            TransformKind::Sum => Some(window.iter().sum()),
            TransformKind::Max => Some(window.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            TransformKind::Min => Some(window.iter().copied().fold(f64::INFINITY, f64::min)),
            TransformKind::Spread => {
                let mx = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mn = window.iter().copied().fold(f64::INFINITY, f64::min);
                Some(mx - mn)
            }
            TransformKind::Dwt => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    fn windows() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let left: Vec<f64> = (0..8).map(|i| (i as f64 * 1.3).sin() * 4.0 + 5.0).collect();
        let right: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).cos() * 2.0 + 3.0).collect();
        let full: Vec<f64> = left.iter().chain(&right).copied().collect();
        (left, right, full)
    }

    #[test]
    fn exact_merge_matches_direct_for_all_kinds() {
        let (left, right, full) = windows();
        for kind in [
            TransformKind::Sum,
            TransformKind::Max,
            TransformKind::Min,
            TransformKind::Spread,
            TransformKind::Dwt,
        ] {
            let f = 4;
            let fl = kind.compute(&left, f);
            let fr = kind.compute(&right, f);
            let merged = kind.merge_exact(&fl, &fr);
            let direct = kind.compute(&full, f);
            assert_eq!(merged.len(), direct.len());
            for (m, d) in merged.iter().zip(&direct) {
                assert!((m - d).abs() < EPS, "{kind:?}: {merged:?} vs {direct:?}");
            }
        }
    }

    #[test]
    fn interval_merge_contains_exact_merge() {
        let (left, right, full) = windows();
        for kind in [
            TransformKind::Sum,
            TransformKind::Max,
            TransformKind::Min,
            TransformKind::Spread,
            TransformKind::Dwt,
        ] {
            let f = 4;
            let fl = kind.compute(&left, f);
            let fr = kind.compute(&right, f);
            // Inflate each half feature into a box (simulating MBR slack).
            let bl = Bounds::new(
                fl.iter().map(|v| v - 0.5).collect(),
                fl.iter().map(|v| v + 0.3).collect(),
            );
            let br = Bounds::new(
                fr.iter().map(|v| v - 0.2).collect(),
                fr.iter().map(|v| v + 0.6).collect(),
            );
            let merged = kind.merge_bounds(&bl, &br, MergePrecision::Fast);
            let exact = kind.compute(&full, f);
            assert!(
                merged.contains(&exact, EPS),
                "{kind:?}: exact {exact:?} outside merged {merged:?}"
            );
        }
    }

    #[test]
    fn degenerate_interval_merge_equals_exact_merge() {
        let (left, right, _) = windows();
        for kind in [
            TransformKind::Sum,
            TransformKind::Max,
            TransformKind::Min,
            TransformKind::Spread,
            TransformKind::Dwt,
        ] {
            let f = 4;
            let fl = kind.compute(&left, f);
            let fr = kind.compute(&right, f);
            let merged =
                kind.merge_bounds(&Bounds::point(&fl), &Bounds::point(&fr), MergePrecision::Fast);
            let exact = kind.merge_exact(&fl, &fr);
            for i in 0..exact.len() {
                assert!((merged.lo()[i] - exact[i]).abs() < EPS, "{kind:?}");
                assert!((merged.hi()[i] - exact[i]).abs() < EPS, "{kind:?}");
            }
        }
    }

    #[test]
    fn tight_merge_never_looser_than_fast() {
        let bl = Bounds::new(vec![-1.0, 0.0, 1.0, 2.0], vec![0.0, 2.0, 1.5, 2.5]);
        let br = Bounds::new(vec![3.0, -2.0, 0.0, 0.0], vec![4.0, 0.0, 0.25, 1.0]);
        let fast = TransformKind::Dwt.merge_bounds(&bl, &br, MergePrecision::Fast);
        let tight = TransformKind::Dwt.merge_bounds(&bl, &br, MergePrecision::Tight);
        assert!(fast.contains_bounds(&tight, EPS));
    }

    #[test]
    fn spread_interval_bounds_true_spread() {
        let window = [3.0, 9.0, 1.0, 5.0];
        let feat = TransformKind::Spread.compute(&window, 0);
        assert_eq!(feat, vec![9.0, 1.0]);
        let b = Bounds::new(vec![8.5, 0.5], vec![9.5, 1.5]);
        let (lo, hi) = TransformKind::Spread.aggregate_interval(&b).unwrap();
        let true_spread = TransformKind::Spread.scalar_aggregate(&window).unwrap();
        assert!(lo <= true_spread && true_spread <= hi);
        assert!((true_spread - 8.0).abs() < EPS);
    }

    #[test]
    fn aggregate_interval_for_sum() {
        let b = Bounds::new(vec![10.0], vec![14.0]);
        assert_eq!(TransformKind::Sum.aggregate_interval(&b), Some((10.0, 14.0)));
        assert_eq!(TransformKind::Dwt.aggregate_interval(&b), None);
    }

    #[test]
    fn dims_per_kind() {
        assert_eq!(TransformKind::Sum.dims(8), 1);
        assert_eq!(TransformKind::Spread.dims(8), 2);
        assert_eq!(TransformKind::Dwt.dims(8), 8);
    }
}
