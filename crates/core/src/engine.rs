//! The multi-stream Stardust engine: per-stream summaries plus one shared
//! R\*-tree per resolution level.
//!
//! §4: "We maintain features at a given level in a high dimensional index
//! structure. The index combines information from all the streams […]
//! However, each MBR inserted into the index is specific to a single
//! stream." Sealed MBRs flow into the level's tree; retired MBRs are
//! deleted. The pattern-query algorithms (Algorithms 3 and 4) run against
//! this engine; aggregate and correlation monitoring have dedicated
//! façades ([`crate::query::aggregate::AggregateMonitor`],
//! [`crate::query::correlation::CorrelationMonitor`]) built on the same
//! summarizer.
//!
//! Feature coordinates are kept **unnormalized** throughout (the DWT is
//! linear, so the Eq. 2 scale factor commutes with everything); queries
//! convert their normalized-space radius `r` into the equivalent raw-space
//! radius `r·√|Q|·R_max` once, which lets a single tree serve queries of
//! any length.

use stardust_index::{bulk_load, Params, RStarTree, Rect};

use crate::config::Config;
use crate::mbr::FeatureMbr;
use crate::stream::{StreamId, Time};
use crate::summarizer::{StreamSummary, SummaryEvent};
use crate::transform::{MergePrecision, TransformKind};

/// What a tree leaf points back to: a sealed MBR of one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Owning stream.
    pub stream: StreamId,
    /// Feature time of the MBR's first feature.
    pub first: Time,
    /// Number of features in the MBR.
    pub count: u32,
    /// Spacing between consecutive feature times.
    pub period: u64,
}

impl IndexEntry {
    /// Iterates the feature times contained in the MBR.
    pub fn feature_times(&self) -> impl Iterator<Item = Time> + '_ {
        (0..self.count as u64).map(move |i| self.first + i * self.period)
    }
}

/// The Stardust engine over `M` streams.
pub struct Stardust {
    config: Config,
    streams: Vec<StreamSummary>,
    trees: Vec<RStarTree<IndexEntry>>,
    events: Vec<SummaryEvent>,
}

impl Stardust {
    /// An engine over `n_streams` streams with the given configuration.
    /// The configuration must use the DWT transform (aggregate monitoring
    /// does not need the cross-stream index; use `AggregateMonitor`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or not DWT-based.
    pub fn new(config: Config, n_streams: usize) -> Self {
        Self::with_precision(config, n_streams, MergePrecision::Fast)
    }

    /// As [`Stardust::new`] with an explicit DWT merge precision.
    pub fn with_precision(config: Config, n_streams: usize, precision: MergePrecision) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        assert_eq!(
            config.transform,
            TransformKind::Dwt,
            "the indexed engine is DWT-based; aggregates use AggregateMonitor"
        );
        config.validate();
        let dims = config.transform.dims(config.dwt_coeffs);
        let streams = (0..n_streams)
            .map(|_| StreamSummary::with_precision(config.clone(), precision))
            .collect();
        let trees =
            (0..config.levels).map(|_| RStarTree::with_params(dims, Params::default())).collect();
        Stardust { config, streams, trees, events: Vec::new() }
    }

    /// The shared configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// The summary of one stream.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn summary(&self, stream: StreamId) -> &StreamSummary {
        &self.streams[stream as usize]
    }

    /// The index at a resolution level.
    ///
    /// # Panics
    /// Panics if the level is out of range.
    pub fn tree(&self, level: usize) -> &RStarTree<IndexEntry> {
        &self.trees[level]
    }

    /// Appends one value to one stream, maintaining summaries and indexes.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) {
        self.events.clear();
        self.streams[stream as usize].push(value, &mut self.events);
        for event in self.events.drain(..) {
            match event {
                SummaryEvent::Sealed { level, mbr } => {
                    let (rect, entry) = index_record(stream, &mbr);
                    self.trees[level].insert(rect, entry);
                }
                SummaryEvent::Retired { level, mbr } => {
                    let (rect, entry) = index_record(stream, &mbr);
                    let removed = self.trees[level].remove(&rect, &entry);
                    debug_assert!(removed, "retired MBR was never indexed");
                }
            }
        }
    }

    /// Appends one synchronized value per stream (`values.len()` must equal
    /// the stream count).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn append_all(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.streams.len(), "one value per stream");
        for (s, &v) in values.iter().enumerate() {
            self.append(s as StreamId, v);
        }
    }

    /// Converts a normalized-space radius (Eq. 2 with window length
    /// `query_len`) to the equivalent raw-space radius.
    pub fn raw_radius(&self, r: f64, query_len: usize) -> f64 {
        r * (query_len as f64).sqrt() * self.config.r_max
    }

    /// Serializes the whole engine (every stream's summary). The per-level
    /// R\*-trees are *not* serialized — they are derived state, rebuilt on
    /// restore by re-indexing every retained sealed MBR.
    pub fn snapshot(&self) -> Vec<u8> {
        // Concatenate per-stream summary snapshots behind a count header;
        // each summary blob is length-prefixed.
        let mut out = Vec::new();
        out.extend_from_slice(crate::snapshot::MAGIC);
        out.extend_from_slice(&(self.streams.len() as u64).to_le_bytes());
        for s in &self.streams {
            let blob = s.snapshot();
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out
    }

    /// Rebuilds an engine from a [`Stardust::snapshot`] buffer.
    ///
    /// # Errors
    /// Returns [`crate::snapshot::SnapshotError`] on malformed input or if
    /// the streams' configurations disagree.
    pub fn restore(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let magic = crate::snapshot::MAGIC;
        if bytes.len() < magic.len() + 8 || &bytes[..magic.len()] != magic {
            return Err(SnapshotError::BadMagic);
        }
        let mut pos = magic.len();
        let read_u64 = |pos: &mut usize| -> Result<u64, SnapshotError> {
            let end = *pos + 8;
            if end > bytes.len() {
                return Err(SnapshotError::Truncated);
            }
            let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8 bytes"));
            *pos = end;
            Ok(v)
        };
        let n_streams = read_u64(&mut pos)? as usize;
        if n_streams == 0 || n_streams > bytes.len() {
            return Err(SnapshotError::Corrupt("stream count"));
        }
        let mut streams = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let len = read_u64(&mut pos)? as usize;
            if pos + len > bytes.len() {
                return Err(SnapshotError::Truncated);
            }
            streams.push(StreamSummary::restore(&bytes[pos..pos + len])?);
            pos += len;
        }
        if pos != bytes.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        let config = streams[0].config().clone();
        if config.transform != TransformKind::Dwt {
            return Err(SnapshotError::Corrupt("engine requires a DWT configuration"));
        }
        if streams.iter().any(|s| s.config() != &config) {
            return Err(SnapshotError::Corrupt("stream configurations disagree"));
        }
        // Rebuild the per-level indexes from the retained sealed MBRs with
        // one STR bulk build per level instead of N incremental inserts.
        let dims = config.transform.dims(config.dwt_coeffs);
        let trees: Vec<RStarTree<IndexEntry>> = (0..config.levels)
            .map(|level| {
                let items: Vec<(Rect, IndexEntry)> = streams
                    .iter()
                    .enumerate()
                    .flat_map(|(sid, summary)| {
                        summary
                            .sealed_mbrs(level)
                            .map(move |mbr| index_record(sid as StreamId, mbr))
                    })
                    .collect();
                bulk_load(dims, Params::default(), items)
            })
            .collect();
        Ok(Stardust { config, streams, trees, events: Vec::new() })
    }
}

impl std::fmt::Debug for Stardust {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stardust")
            .field("streams", &self.streams.len())
            .field("levels", &self.config.levels)
            .field("indexed", &self.trees.iter().map(|t| t.len()).collect::<Vec<_>>())
            .finish()
    }
}

/// The (rectangle, payload) pair under which an MBR is indexed; must be
/// deterministic so retirement can delete the exact record.
fn index_record(stream: StreamId, mbr: &FeatureMbr) -> (Rect, IndexEntry) {
    let rect = Rect::new(mbr.bounds.lo().to_vec(), mbr.bounds.hi().to_vec());
    let entry =
        IndexEntry { stream, first: mbr.first, count: mbr.count as u32, period: mbr.period };
    (rect, entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(streams: usize) -> Stardust {
        let cfg = Config::batch(8, 3, 4, 100.0).with_history(64);
        Stardust::new(cfg, streams)
    }

    fn wave(i: usize, s: usize) -> f64 {
        ((i as f64 * 0.21) + s as f64).sin() * 20.0 + 50.0
    }

    #[test]
    fn indexes_follow_sealed_mbrs() {
        let mut e = engine(3);
        for i in 0..200 {
            for s in 0..3 {
                e.append(s, wave(i, s as usize));
            }
        }
        for level in 0..3 {
            let tree_count = e.tree(level).len();
            let sealed: usize = (0..3).map(|s| e.summary(s).sealed_mbrs(level).count()).sum();
            assert_eq!(tree_count, sealed, "level {level}");
            assert!(tree_count > 0, "level {level} should have entries");
            e.tree(level).validate().expect("valid tree");
        }
    }

    #[test]
    fn retired_mbrs_leave_index() {
        let mut e = engine(1);
        for i in 0..2000 {
            e.append(0, wave(i, 0));
        }
        // History is 64, features every 8 at level 0 -> at most ~9-10 live.
        assert!(e.tree(0).len() <= 12, "level 0 holds {}", e.tree(0).len());
    }

    #[test]
    fn entry_feature_times() {
        let entry = IndexEntry { stream: 2, first: 63, count: 3, period: 64 };
        let times: Vec<Time> = entry.feature_times().collect();
        assert_eq!(times, vec![63, 127, 191]);
    }

    #[test]
    fn raw_radius_conversion() {
        let e = engine(1);
        // r·√|Q|·R_max = 0.1·√64·100
        assert!((e.raw_radius(0.1, 64) - 80.0).abs() < 1e-9);
    }

    /// Snapshot → restore → continue: index contents and query behaviour
    /// are preserved.
    #[test]
    fn engine_snapshot_roundtrip() {
        let mut e = engine(3);
        for i in 0..300 {
            for s in 0..3 {
                e.append(s, wave(i, s as usize));
            }
        }
        let bytes = e.snapshot();
        let mut r = Stardust::restore(&bytes).expect("restores");
        assert_eq!(r.n_streams(), 3);
        for level in 0..3 {
            assert_eq!(e.tree(level).len(), r.tree(level).len(), "level {level}");
            r.tree(level).validate().expect("valid restored tree");
        }
        // Future appends keep the two engines in lockstep.
        for i in 300..400 {
            for s in 0..3 {
                e.append(s, wave(i, s as usize));
                r.append(s, wave(i, s as usize));
            }
        }
        for level in 0..3 {
            assert_eq!(e.tree(level).len(), r.tree(level).len(), "level {level} after append");
        }
        // And answer pattern queries identically.
        let q = crate::query::pattern::PatternQuery {
            sequence: (360..392).map(|i| wave(i, 1)).collect(),
            radius: 0.05,
        };
        let a = crate::query::pattern::query_batch(&e, &q).expect("valid");
        let b = crate::query::pattern::query_batch(&r, &q).expect("valid");
        let mut ma: Vec<_> = a.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        let mut mb: Vec<_> = b.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        ma.sort_unstable();
        mb.sort_unstable();
        assert_eq!(ma, mb);
    }

    #[test]
    fn engine_restore_rejects_garbage() {
        assert!(Stardust::restore(b"junk").is_err());
        let e = engine(2);
        let good = e.snapshot();
        for cut in (8..good.len()).step_by(101) {
            assert!(Stardust::restore(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "DWT-based")]
    fn rejects_aggregate_transform() {
        let cfg = Config::online(TransformKind::Sum, 8, 2, 1);
        let _ = Stardust::new(cfg, 1);
    }
}
