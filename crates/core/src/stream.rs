//! Stream identities and the raw-value history ring buffer.
//!
//! §2.1: a stream is an ordered sequence of bounded values; the system
//! keeps summary information over a time window of size `N`. Raw values
//! inside the window are retained too — Algorithm 2 retrieves the most
//! recent subsequence to verify candidate alarms, and the pattern /
//! correlation monitors verify candidate matches the same way.

/// Identifier of one input stream.
pub type StreamId = u32;

/// Discrete time: the 0-based index of a value in its stream.
pub type Time = u64;

/// A fixed-capacity ring buffer holding the most recent `capacity` values
/// of one stream, addressable by absolute time.
#[derive(Debug, Clone)]
pub struct StreamHistory {
    buf: Vec<f64>,
    capacity: usize,
    /// Number of values ever pushed; the next value gets time `next`.
    next: Time,
}

impl StreamHistory {
    /// An empty history retaining the last `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        StreamHistory { buf: Vec::with_capacity(capacity), capacity, next: 0 }
    }

    /// Appends a value, evicting the oldest if full. Returns the time
    /// assigned to the value.
    pub fn push(&mut self, value: f64) -> Time {
        let t = self.next;
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[(t % self.capacity as u64) as usize] = value;
        }
        self.next += 1;
        t
    }

    /// Number of values ever pushed (the current time frontier).
    pub fn len_seen(&self) -> Time {
        self.next
    }

    /// Time of the most recent value, `None` if empty.
    pub fn latest_time(&self) -> Option<Time> {
        self.next.checked_sub(1)
    }

    /// Oldest time still retained.
    pub fn oldest_time(&self) -> Time {
        self.next.saturating_sub(self.buf.len() as u64)
    }

    /// The value at absolute time `t`, `None` if evicted or not yet seen.
    pub fn get(&self, t: Time) -> Option<f64> {
        if t >= self.next || t < self.oldest_time() {
            return None;
        }
        Some(self.buf[(t % self.capacity as u64) as usize])
    }

    /// Copies the window of `len` values ending at time `t_end` (inclusive)
    /// into `out`. Returns `false` (leaving `out` cleared) if any part of
    /// the window is unavailable.
    pub fn copy_window(&self, t_end: Time, len: usize, out: &mut Vec<f64>) -> bool {
        out.clear();
        if len == 0 {
            return true;
        }
        let Some(start) = (t_end + 1).checked_sub(len as u64) else { return false };
        if t_end >= self.next || start < self.oldest_time() {
            return false;
        }
        out.reserve(len);
        for t in start..=t_end {
            out.push(self.buf[(t % self.capacity as u64) as usize]);
        }
        true
    }

    /// Raw snapshot parts: (capacity, next time, ring buffer as stored).
    pub(crate) fn raw_parts(&self) -> (usize, Time, &[f64]) {
        (self.capacity, self.next, &self.buf)
    }

    /// Rebuilds a history from snapshot parts, validating consistency.
    pub(crate) fn from_raw_parts(
        capacity: usize,
        next: Time,
        buf: Vec<f64>,
    ) -> Result<Self, &'static str> {
        if capacity == 0 {
            return Err("zero history capacity");
        }
        let expected = (next.min(capacity as u64)) as usize;
        if buf.len() != expected {
            return Err("ring length inconsistent with time frontier");
        }
        Ok(StreamHistory { buf, capacity, next })
    }

    /// The window of `len` values ending at `t_end`, or `None` if any part
    /// is unavailable.
    pub fn window(&self, t_end: Time, len: usize) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        if self.copy_window(t_end, len, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_times() {
        let mut h = StreamHistory::new(4);
        assert_eq!(h.push(1.0), 0);
        assert_eq!(h.push(2.0), 1);
        assert_eq!(h.len_seen(), 2);
        assert_eq!(h.latest_time(), Some(1));
    }

    #[test]
    fn get_within_capacity() {
        let mut h = StreamHistory::new(3);
        for i in 0..3 {
            h.push(i as f64);
        }
        assert_eq!(h.get(0), Some(0.0));
        assert_eq!(h.get(2), Some(2.0));
        assert_eq!(h.get(3), None);
    }

    #[test]
    fn eviction_after_wraparound() {
        let mut h = StreamHistory::new(3);
        for i in 0..5 {
            h.push(i as f64);
        }
        assert_eq!(h.oldest_time(), 2);
        assert_eq!(h.get(1), None);
        assert_eq!(h.get(2), Some(2.0));
        assert_eq!(h.get(4), Some(4.0));
    }

    #[test]
    fn window_extraction() {
        let mut h = StreamHistory::new(8);
        for i in 0..8 {
            h.push(i as f64 * 10.0);
        }
        assert_eq!(h.window(4, 3), Some(vec![20.0, 30.0, 40.0]));
        assert_eq!(h.window(7, 8), Some((0..8).map(|i| i as f64 * 10.0).collect()));
    }

    #[test]
    fn window_unavailable_cases() {
        let mut h = StreamHistory::new(4);
        for i in 0..6 {
            h.push(i as f64);
        }
        // Evicted prefix.
        assert_eq!(h.window(3, 4), None);
        // Future.
        assert_eq!(h.window(7, 2), None);
        // Longer than history since start.
        assert_eq!(h.window(5, 7), None);
        // Valid.
        assert_eq!(h.window(5, 4), Some(vec![2.0, 3.0, 4.0, 5.0]));
    }

    #[test]
    fn empty_window_is_ok() {
        let h = StreamHistory::new(2);
        let mut out = vec![1.0];
        assert!(h.copy_window(0, 0, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut h = StreamHistory::new(5);
        for i in 0..23 {
            h.push(i as f64);
        }
        let w = h.window(22, 5).unwrap();
        assert_eq!(w, vec![18.0, 19.0, 20.0, 21.0, 22.0]);
    }
}
