//! Minimum bounding rectangles over consecutive features.
//!
//! §4: "At each resolution level, we combine every `c` of the feature
//! vectors into a box, or a minimum bounding rectangle (MBR)", exploiting
//! the strong spatio-temporal correlation between consecutive features to
//! cut the space overhead by a factor of `c`. Alongside the feature-space
//! extent, each MBR carries interval bounds on the windows' sum and sum of
//! squares so that z-normalization can be performed downstream, and its
//! temporal extent (first feature time, count, update period) for the
//! per-stream threading.

use stardust_dsp::mbr_transform::Bounds;

use crate::stream::Time;

/// A box over up to `c` consecutive features of one stream at one level.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMbr {
    /// Feature-space extent (unnormalized coordinates).
    pub bounds: Bounds,
    /// Interval bound on the window sums of the contained features.
    pub sum: (f64, f64),
    /// Interval bound on the window sums of squares.
    pub sumsq: (f64, f64),
    /// Feature time (window end index) of the first contained feature.
    pub first: Time,
    /// Number of contained features.
    pub count: usize,
    /// Spacing `T_j` between consecutive feature times.
    pub period: u64,
}

impl FeatureMbr {
    /// A fresh MBR holding exactly one feature (possibly itself an
    /// interval, when the feature was produced by an approximate merge).
    pub fn first(
        bounds: Bounds,
        sum: (f64, f64),
        sumsq: (f64, f64),
        time: Time,
        period: u64,
    ) -> Self {
        debug_assert!(period >= 1);
        FeatureMbr { bounds, sum, sumsq, first: time, count: 1, period }
    }

    /// Feature time of the last contained feature.
    pub fn last(&self) -> Time {
        self.first + (self.count as u64 - 1) * self.period
    }

    /// `true` if a feature with time `t` is contained in this MBR.
    pub fn covers(&self, t: Time) -> bool {
        t >= self.first && t <= self.last() && (t - self.first).is_multiple_of(self.period)
    }

    /// Absorbs the next consecutive feature (time must be `last() +
    /// period`).
    ///
    /// # Panics
    /// Panics (debug) if the time is not the expected successor.
    pub fn absorb(&mut self, bounds: &Bounds, sum: (f64, f64), sumsq: (f64, f64), time: Time) {
        debug_assert_eq!(time, self.last() + self.period, "features must be absorbed in order");
        self.bounds.extend(bounds.lo());
        self.bounds.extend(bounds.hi());
        self.sum.0 = self.sum.0.min(sum.0);
        self.sum.1 = self.sum.1.max(sum.1);
        self.sumsq.0 = self.sumsq.0.min(sumsq.0);
        self.sumsq.1 = self.sumsq.1.max(sumsq.1);
        self.count += 1;
        let _ = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64]) -> Bounds {
        Bounds::point(coords)
    }

    #[test]
    fn single_feature_mbr() {
        let m = FeatureMbr::first(pt(&[1.0, 2.0]), (3.0, 3.0), (5.0, 5.0), 10, 1);
        assert_eq!(m.last(), 10);
        assert!(m.covers(10));
        assert!(!m.covers(11));
        assert!(!m.covers(9));
    }

    #[test]
    fn absorb_extends_everything() {
        let mut m = FeatureMbr::first(pt(&[1.0, 2.0]), (3.0, 3.0), (5.0, 5.0), 10, 1);
        m.absorb(&pt(&[0.0, 4.0]), (2.0, 2.0), (9.0, 9.0), 11);
        assert_eq!(m.count, 2);
        assert_eq!(m.last(), 11);
        assert_eq!(m.bounds.lo(), &[0.0, 2.0]);
        assert_eq!(m.bounds.hi(), &[1.0, 4.0]);
        assert_eq!(m.sum, (2.0, 3.0));
        assert_eq!(m.sumsq, (5.0, 9.0));
    }

    #[test]
    fn covers_respects_period() {
        let mut m = FeatureMbr::first(pt(&[0.0]), (0.0, 0.0), (0.0, 0.0), 63, 64);
        m.absorb(&pt(&[1.0]), (0.0, 0.0), (0.0, 0.0), 127);
        m.absorb(&pt(&[2.0]), (0.0, 0.0), (0.0, 0.0), 191);
        assert!(m.covers(63));
        assert!(m.covers(127));
        assert!(m.covers(191));
        assert!(!m.covers(128));
        assert!(!m.covers(255));
        assert_eq!(m.last(), 191);
    }

    #[test]
    fn interval_features_absorb() {
        let mut m =
            FeatureMbr::first(Bounds::new(vec![0.0], vec![1.0]), (0.0, 2.0), (0.0, 4.0), 5, 1);
        m.absorb(&Bounds::new(vec![-1.0], vec![0.5]), (1.0, 3.0), (1.0, 2.0), 6);
        assert_eq!(m.bounds.lo(), &[-1.0]);
        assert_eq!(m.bounds.hi(), &[1.0]);
        assert_eq!(m.sum, (0.0, 3.0));
        assert_eq!(m.sumsq, (0.0, 4.0));
    }
}
