//! The two normalizations of §2.3 / §2.4 and the correlation ↔ distance
//! reduction.

/// Unit-hypersphere normalization (Eq. 2): `x̂[i] = x[i] / (√w · R_max)`,
/// mapping a window of values in `[0, R_max]` into the unit hyper-sphere.
///
/// # Panics
/// Panics if the window is empty or `r_max` is not positive.
pub fn unit_sphere(window: &[f64], r_max: f64) -> Vec<f64> {
    assert!(!window.is_empty(), "cannot normalize an empty window");
    assert!(r_max > 0.0, "R_max must be positive");
    let s = 1.0 / ((window.len() as f64).sqrt() * r_max);
    window.iter().map(|x| x * s).collect()
}

/// The scale factor of Eq. 2 for window length `w`: `1 / (√w · R_max)`.
/// The DWT is linear, so features can be maintained unnormalized and scaled
/// by this factor when they are inserted into the index.
#[inline]
pub fn unit_sphere_scale(w: usize, r_max: f64) -> f64 {
    1.0 / ((w as f64).sqrt() * r_max)
}

/// z-normalization (Eq. 3): subtract the mean and divide by the centered
/// L2 norm, so that `‖x̂‖ = 1` and the mean is zero.
///
/// Returns `None` for windows with zero variance (the z-norm is
/// undefined).
pub fn z_norm(window: &[f64]) -> Option<Vec<f64>> {
    assert!(!window.is_empty(), "cannot normalize an empty window");
    let w = window.len() as f64;
    let mu = window.iter().sum::<f64>() / w;
    let energy: f64 = window.iter().map(|x| (x - mu) * (x - mu)).sum();
    if energy <= 0.0 {
        return None;
    }
    let s = 1.0 / energy.sqrt();
    Some(window.iter().map(|x| (x - mu) * s).collect())
}

/// Width of the chunks [`l2_distance`] squares per iteration: one 256-bit
/// vector of `f64`, matching the index geometry primitives.
const LANES: usize = 4;

/// Euclidean distance between two equal-length slices.
///
/// The squared differences are formed in fixed-width chunks (a strictly
/// element-wise kernel the optimizer can vectorize) and accumulated in
/// element order, so the value is bit-identical to the naive running sum.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let (ac, at) = a.as_chunks::<LANES>();
    let (bc, bt) = b.as_chunks::<LANES>();
    let mut acc = 0.0;
    for (x, y) in ac.iter().zip(bc) {
        let mut sq = [0.0; LANES];
        for i in 0..LANES {
            let d = x[i] - y[i];
            sq[i] = d * d;
        }
        for s in sq {
            acc += s;
        }
    }
    for (x, y) in at.iter().zip(bt) {
        acc += (x - y) * (x - y);
    }
    acc.sqrt()
}

/// Pearson correlation via the z-norm reduction of §2.4:
/// `corr(x, y) = 1 − L2²(x̂, ŷ) / 2`.
///
/// Returns `None` if either window has zero variance.
pub fn correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    let zx = z_norm(x)?;
    let zy = z_norm(y)?;
    Some(correlation_of_znormed(&zx, &zy))
}

/// [`correlation`] for windows that are already z-normalized.
///
/// Verification phases that compare one stream against many candidates
/// z-normalize each window once and evaluate all pairs through this
/// function; since [`z_norm`] is deterministic, the result is bit-identical
/// to calling [`correlation`] on the raw windows pair by pair.
#[inline]
pub fn correlation_of_znormed(zx: &[f64], zy: &[f64]) -> f64 {
    let d = l2_distance(zx, zy);
    1.0 - d * d / 2.0
}

/// Converts a correlation threshold to the equivalent z-norm distance
/// threshold: `corr ≥ 1 − r²/2  ⇔  L2(x̂, ŷ) ≤ r`.
#[inline]
pub fn correlation_to_distance(min_corr: f64) -> f64 {
    (2.0 * (1.0 - min_corr)).max(0.0).sqrt()
}

/// Inverse of [`correlation_to_distance`].
#[inline]
pub fn distance_to_correlation(r: f64) -> f64 {
    1.0 - r * r / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn unit_sphere_bounds_norm() {
        // Values in [0, R_max] ⇒ ‖x̂‖ ≤ 1, with equality at x ≡ R_max.
        let w = vec![5.0; 16];
        let n = unit_sphere(&w, 5.0);
        let norm: f64 = n.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < EPS);
        let w2 = vec![2.0; 16];
        let n2 = unit_sphere(&w2, 5.0);
        let norm2: f64 = n2.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm2 < 1.0);
    }

    #[test]
    fn unit_sphere_scale_matches() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let direct = unit_sphere(&w, 10.0);
        let s = unit_sphere_scale(4, 10.0);
        for (d, x) in direct.iter().zip(&w) {
            assert!((d - x * s).abs() < EPS);
        }
    }

    #[test]
    fn z_norm_properties() {
        let x = [1.0, 4.0, 2.0, 9.0, -3.0];
        let z = z_norm(&x).unwrap();
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let norm: f64 = z.iter().map(|v| v * v).sum::<f64>();
        assert!(mean.abs() < EPS);
        assert!((norm - 1.0).abs() < EPS);
    }

    #[test]
    fn z_norm_constant_is_none() {
        assert!(z_norm(&[3.0, 3.0, 3.0]).is_none());
    }

    #[test]
    fn correlation_of_identical_is_one() {
        let x = [1.0, 5.0, 2.0, 8.0];
        assert!((correlation(&x, &x).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn correlation_is_affine_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 7.0).collect();
        assert!((correlation(&x, &y).unwrap() - 1.0).abs() < EPS);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((correlation(&x, &neg).unwrap() + 1.0).abs() < EPS);
    }

    #[test]
    fn correlation_matches_pearson() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Pearson by hand.
        let mx = 3.0;
        let my = 3.0;
        let cov: f64 = x.iter().zip(&y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
        let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
        let pearson = cov / (vx.sqrt() * vy.sqrt());
        assert!((correlation(&x, &y).unwrap() - pearson).abs() < EPS);
    }

    #[test]
    fn threshold_conversions_roundtrip() {
        for &c in &[0.5, 0.9, 0.99, 0.0, -0.5] {
            let r = correlation_to_distance(c);
            assert!((distance_to_correlation(r) - c).abs() < EPS);
        }
    }
}
