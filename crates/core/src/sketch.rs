//! Deterministic sliding-window sketches for cross-shard correlation
//! pruning.
//!
//! A [`BlockSketch`] summarizes the last `N` values of one stream as `m`
//! contiguous blocks of `b = N/m` values each, keeping only the running
//! `(Σx, Σx²)` pair per block — `Θ(m)` space regardless of `N`, in the
//! spirit of the deterministic CR-precis summaries (Ganguly & Majumder)
//! and the sketch-based distributed sliding-window querying of
//! Papapetrou et al. Blocks carry **absolute indices** (block `k` covers
//! times `[k·b, (k+1)·b)`), which makes sketch exchange idempotent: a
//! delta re-shipped after a crash merges to the exact same state
//! ([`BlockSketch::absorb`]).
//!
//! ## The no-false-dismissal bound
//!
//! Let `x ∈ ℝ^N` be a raw window and `x̂ = (x − μ_x·1)/‖x − μ_x·1‖₂` its
//! z-normalization (zero mean, unit L2 norm — the reduction behind
//! `corr(x, y) = 1 − d²(x̂, ŷ)/2`). Let `P` be the orthogonal projection
//! of `ℝ^N` onto the subspace of block-constant vectors (averaging
//! within each of the `m` blocks). Orthogonal projections are
//! 1-Lipschitz, so for any two windows
//!
//! ```text
//!   ‖P x̂ − P ŷ‖₂  ≤  ‖x̂ − ŷ‖₂ .
//! ```
//!
//! `P x̂` is computable from the sketch alone: within block `k` it is the
//! constant `(s_k/b − μ_x)/E_x`, where `s_k` is the block sum,
//! `μ_x = Σ_k s_k / N`, and `E_x = √(Σ_k q_k − N·μ_x²)` with `q_k` the
//! block sum-of-squares. [`BlockSketch::distance_lower_bound`] evaluates
//! the left-hand side — a **lower bound on the true z-norm distance**,
//! so pruning a candidate pair because the bound already exceeds the
//! radius can never dismiss a truly correlated pair. The only float
//! caveat is rounding: the collector adds [`PRUNE_SLACK`] to the radius
//! before pruning, so last-ulp disagreements between the sketch's
//! one-pass moments and the verifier's two-pass z-norm cannot flip a
//! boundary decision.

use crate::snapshot::{Reader, SnapshotError, Writer};
use crate::stream::Time;

/// Absolute slack added to the prune radius to absorb floating-point
/// rounding between the sketch's one-pass moments and exact raw-window
/// verification. z-norm distances live in `[0, 2]`, so an absolute
/// margin is meaningful; anything pruned had a lower bound at least
/// this far beyond the radius.
pub const PRUNE_SLACK: f64 = 1e-6;

/// A sketch delta shipped from a shard to the collector: the sender's
/// current complete blocks, keyed by absolute block index. Absorbing a
/// delta is idempotent and order-insensitive for stale deltas, so crash
/// recovery may re-ship freely (see [`BlockSketch::absorb`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchDelta {
    /// Absolute index of `blocks[0]`.
    pub first: u64,
    /// `(Σx, Σx²)` per complete block, oldest first.
    pub blocks: Vec<(f64, f64)>,
}

/// A sliding-window block sketch over the last `window` values, at
/// block granularity `block` (which must divide `window`).
///
/// Maintained two ways, never both on one instance: shard-side by
/// [`Self::push`]ing every raw value, collector-side by
/// [`Self::absorb`]ing shipped deltas. Both converge to the identical
/// complete-block state (a property test pins this).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSketch {
    window: usize,
    block: usize,
    /// Absolute index of the next block to seal; the front of `blocks`
    /// holds absolute index `next_block − blocks.len()`.
    next_block: u64,
    /// `(Σx, Σx²)` of the newest `≤ window/block` sealed blocks, oldest
    /// first.
    blocks: std::collections::VecDeque<(f64, f64)>,
    /// Accumulators of the currently open block (push side only).
    cur: (f64, f64),
    cur_count: usize,
}

impl BlockSketch {
    /// A sketch over windows of `window` values split into blocks of
    /// `block` values.
    ///
    /// # Panics
    /// Panics unless `1 ≤ block ≤ window` and `block` divides `window`.
    pub fn new(window: usize, block: usize) -> Self {
        assert!(block >= 1 && block <= window, "block must be in 1..=window");
        assert!(window.is_multiple_of(block), "block must divide the window");
        BlockSketch {
            window,
            block,
            next_block: 0,
            blocks: std::collections::VecDeque::with_capacity(window / block),
            cur: (0.0, 0.0),
            cur_count: 0,
        }
    }

    /// Window size `N` this sketch summarizes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Block granularity `b`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of blocks `m = N/b` in a complete sketch.
    pub fn n_blocks(&self) -> usize {
        self.window / self.block
    }

    /// Whether the sketch covers a full window of `N` values.
    pub fn is_complete(&self) -> bool {
        self.blocks.len() == self.n_blocks()
    }

    /// Time of the last value in the newest **sealed** block (`None`
    /// before the first block seals). A complete sketch with
    /// `end_time() == Some(t)` summarizes exactly the raw window ending
    /// at `t`.
    pub fn end_time(&self) -> Option<Time> {
        if self.next_block == 0 {
            None
        } else {
            Some(self.next_block * self.block as u64 - 1)
        }
    }

    /// Appends one raw value (shard side). Seals a block every `block`
    /// values and expires the oldest once `m` blocks are held.
    pub fn push(&mut self, value: f64) {
        self.cur.0 += value;
        self.cur.1 += value * value;
        self.cur_count += 1;
        if self.cur_count == self.block {
            self.blocks.push_back(self.cur);
            self.cur = (0.0, 0.0);
            self.cur_count = 0;
            self.next_block += 1;
            if self.blocks.len() > self.n_blocks() {
                self.blocks.pop_front();
            }
        }
    }

    /// The current complete-block set for shipping to a collector.
    pub fn delta(&self) -> SketchDelta {
        SketchDelta {
            first: self.next_block - self.blocks.len() as u64,
            blocks: self.blocks.iter().copied().collect(),
        }
    }

    /// Merges a shipped delta (collector side). Keyed by absolute block
    /// index: a delta whose frontier is at or behind this sketch's is a
    /// no-op, an overlapping delta contributes only its unseen tail,
    /// and a delta past a gap replaces the (entirely expired) contents.
    /// Absorbing the same delta twice therefore changes nothing — the
    /// exactly-once guarantee of the sketch exchange rests on this.
    pub fn absorb(&mut self, delta: &SketchDelta) {
        let d_end = delta.first + delta.blocks.len() as u64;
        if d_end <= self.next_block {
            return; // stale or duplicate
        }
        if delta.first > self.next_block {
            // Everything held has expired out of the sender's window.
            self.blocks.clear();
            self.blocks.extend(delta.blocks.iter().copied());
        } else {
            let skip = (self.next_block - delta.first) as usize;
            self.blocks.extend(delta.blocks[skip..].iter().copied());
        }
        self.next_block = d_end;
        while self.blocks.len() > self.n_blocks() {
            self.blocks.pop_front();
        }
    }

    /// Mean and centered L2 norm (`√(Σx² − N·μ²)`) over the complete
    /// window; `None` if the sketch is incomplete or the window is
    /// (numerically) constant, mirroring `normalize::z_norm` returning
    /// `None` on zero variance.
    pub fn moments(&self) -> Option<(f64, f64)> {
        if !self.is_complete() {
            return None;
        }
        let n = self.window as f64;
        let (sum, sumsq) =
            self.blocks.iter().fold((0.0, 0.0), |(s, q), &(bs, bq)| (s + bs, q + bq));
        let mean = sum / n;
        let e2 = sumsq - n * mean * mean;
        // Relative guard against catastrophic cancellation: when the
        // centered energy is within rounding noise of the raw energy
        // computation, the z-norm is unreliable — report no moments and
        // let the caller fall back to exact verification.
        if e2 <= sumsq.abs() * 1e-12 || e2 <= f64::EPSILON {
            return None;
        }
        Some((mean, e2.sqrt()))
    }

    /// Lower bound on the z-norm distance between the two raw windows
    /// the sketches summarize (see the module docs for the projection
    /// argument). `None` — meaning "cannot prune" — unless both
    /// sketches are complete, share the same geometry **and end time**,
    /// and have well-conditioned moments.
    pub fn distance_lower_bound(&self, other: &BlockSketch) -> Option<f64> {
        self.projection()?.distance_lower_bound(&other.projection()?)
    }

    /// The z-normalized per-block projection of this sketch, precomputed
    /// for repeated comparison.
    ///
    /// Normalizing each block mean by the window moments is `Θ(m)` work
    /// that [`Self::distance_lower_bound`] would otherwise redo for every
    /// pair; a pruning phase comparing `n` sketches pairwise projects each
    /// once and evaluates the `O(n²)` bounds on the flat coordinate
    /// vectors. `None` under exactly the per-sketch conditions of
    /// [`Self::distance_lower_bound`]: incomplete window or
    /// ill-conditioned moments.
    pub fn projection(&self) -> Option<SketchProjection> {
        let (mu, e) = self.moments()?;
        let b = self.block as f64;
        Some(SketchProjection {
            window: self.window,
            block: self.block,
            end_time: self.end_time()?,
            coords: self.blocks.iter().map(|&(s, _)| (s / b - mu) / e).collect(),
        })
    }

    /// Serializes the sketch into `w` (embedded in the correlation
    /// monitor's snapshot).
    pub(crate) fn write_into(&self, w: &mut Writer) {
        w.usize(self.window);
        w.usize(self.block);
        w.u64(self.next_block);
        w.usize(self.blocks.len());
        for &(s, q) in &self.blocks {
            w.f64(s);
            w.f64(q);
        }
        w.f64(self.cur.0);
        w.f64(self.cur.1);
        w.usize(self.cur_count);
    }

    /// Decodes a sketch written by [`Self::write_into`].
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let window = r.usize()?;
        let block = r.usize()?;
        if block == 0 || block > window || !window.is_multiple_of(block) {
            return Err(SnapshotError::Corrupt("sketch geometry"));
        }
        let next_block = r.u64()?;
        let n = r.count(16)?;
        if n > window / block || (n as u64) > next_block {
            return Err(SnapshotError::Corrupt("sketch block count"));
        }
        let mut blocks = std::collections::VecDeque::with_capacity(window / block);
        for _ in 0..n {
            blocks.push_back((r.f64()?, r.f64()?));
        }
        let cur = (r.f64()?, r.f64()?);
        let cur_count = r.usize()?;
        if cur_count >= block {
            return Err(SnapshotError::Corrupt("open sketch block overflows"));
        }
        Ok(BlockSketch { window, block, next_block, blocks, cur, cur_count })
    }
}

/// A complete sketch's z-normalized block means, flattened for repeated
/// lower-bound evaluation (see [`BlockSketch::projection`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchProjection {
    window: usize,
    block: usize,
    end_time: Time,
    coords: Vec<f64>,
}

impl SketchProjection {
    /// Width of the chunks the bound kernel squares per iteration, matching
    /// the other scan primitives.
    const LANES: usize = 4;

    /// Time of the last raw value summarized by the projected sketch.
    pub fn end_time(&self) -> Time {
        self.end_time
    }

    /// Lower bound on the z-norm distance between the two raw windows the
    /// projected sketches summarize. `None` — "cannot prune" — unless both
    /// projections share the same geometry **and end time**.
    ///
    /// Bit-identical to [`BlockSketch::distance_lower_bound`] on the
    /// originating sketches: the squared differences are formed chunk-wise
    /// (element-wise, vectorizable) and accumulated in block order with the
    /// same `b·(pa−pb)·(pa−pb)` association as the reference loop.
    pub fn distance_lower_bound(&self, other: &SketchProjection) -> Option<f64> {
        if self.window != other.window
            || self.block != other.block
            || self.end_time != other.end_time
        {
            return None;
        }
        let b = self.block as f64;
        let (ac, at) = self.coords.as_chunks::<{ Self::LANES }>();
        let (bc, bt) = other.coords.as_chunks::<{ Self::LANES }>();
        let mut d2 = 0.0;
        for (pa, pb) in ac.iter().zip(bc) {
            let mut diff = [0.0; Self::LANES];
            for i in 0..Self::LANES {
                diff[i] = pa[i] - pb[i];
            }
            for d in diff {
                d2 += b * d * d;
            }
        }
        for (pa, pb) in at.iter().zip(bt) {
            let d = pa - pb;
            d2 += b * d * d;
        }
        Some(d2.max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize;

    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn completes_exactly_at_window_and_slides() {
        let mut sk = BlockSketch::new(16, 4);
        for i in 0..15 {
            sk.push(i as f64);
            assert!(!sk.is_complete(), "complete after {} < 16 values", i + 1);
        }
        sk.push(15.0);
        assert!(sk.is_complete());
        assert_eq!(sk.end_time(), Some(15));
        for i in 16..24 {
            sk.push(i as f64);
        }
        assert!(sk.is_complete());
        assert_eq!(sk.end_time(), Some(23));
        assert_eq!(sk.delta().first, 2, "two blocks expired");
    }

    #[test]
    fn moments_match_direct_computation() {
        let mut sk = BlockSketch::new(8, 2);
        let vals: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin() * 3.0 + 10.0).collect();
        for &v in &vals {
            sk.push(v);
        }
        let (mean, energy) = sk.moments().expect("complete, non-constant");
        let mu = vals.iter().sum::<f64>() / 8.0;
        let e = vals.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>().sqrt();
        assert!((mean - mu).abs() < 1e-12);
        assert!((energy - e).abs() < 1e-9);
    }

    #[test]
    fn constant_window_has_no_moments() {
        let mut sk = BlockSketch::new(8, 4);
        for _ in 0..8 {
            sk.push(5.0);
        }
        assert!(sk.is_complete());
        assert!(sk.moments().is_none(), "z-norm undefined on constant windows");
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let mut seed = 11u64;
        for block in [1usize, 4, 8, 32] {
            let n = 32;
            let mut a = BlockSketch::new(n, block);
            let mut b = BlockSketch::new(n, block);
            let (mut x, mut y) = (50.0f64, 30.0f64);
            let mut wx = Vec::new();
            let mut wy = Vec::new();
            for _ in 0..n {
                x += rng(&mut seed) - 0.5;
                y += rng(&mut seed) - 0.5;
                a.push(x);
                b.push(y);
                wx.push(x);
                wy.push(y);
            }
            let lb = a.distance_lower_bound(&b).expect("both complete");
            let za = normalize::z_norm(&wx).expect("nonconstant");
            let zb = normalize::z_norm(&wy).expect("nonconstant");
            let true_d = normalize::l2_distance(&za, &zb);
            assert!(
                lb <= true_d + PRUNE_SLACK,
                "block {block}: lower bound {lb} exceeds true distance {true_d}"
            );
        }
    }

    #[test]
    fn full_resolution_bound_is_tight() {
        // With b = 1 the projection is the identity: the bound equals
        // the true distance up to rounding.
        let mut a = BlockSketch::new(16, 1);
        let mut b = BlockSketch::new(16, 1);
        let mut wx = Vec::new();
        let mut wy = Vec::new();
        for i in 0..16 {
            let x = (i as f64 * 0.9).sin() + 3.0;
            let y = (i as f64 * 0.4).cos() * 2.0 + 1.0;
            a.push(x);
            b.push(y);
            wx.push(x);
            wy.push(y);
        }
        let lb = a.distance_lower_bound(&b).expect("complete");
        let za = normalize::z_norm(&wx).unwrap();
        let zb = normalize::z_norm(&wy).unwrap();
        let true_d = normalize::l2_distance(&za, &zb);
        assert!((lb - true_d).abs() < 1e-9, "b=1 bound {lb} vs true {true_d}");
    }

    #[test]
    fn misaligned_end_times_refuse_to_bound() {
        let mut a = BlockSketch::new(8, 4);
        let mut b = BlockSketch::new(8, 4);
        for i in 0..8 {
            a.push(i as f64);
            b.push(i as f64 * 2.0);
        }
        b.push(99.0);
        b.push(98.0);
        b.push(97.0);
        b.push(96.0); // b now one block ahead
        assert!(a.distance_lower_bound(&b).is_none(), "different end times must not prune");
        assert!(
            BlockSketch::new(8, 2).distance_lower_bound(&BlockSketch::new(8, 4)).is_none(),
            "different geometry must not prune"
        );
    }

    #[test]
    fn absorb_is_idempotent_and_tracks_push() {
        let mut pusher = BlockSketch::new(12, 3);
        let mut mirror = BlockSketch::new(12, 3);
        let mut seed = 3u64;
        for step in 0..60 {
            pusher.push(rng(&mut seed) * 10.0);
            if step % 7 == 0 {
                let d = pusher.delta();
                mirror.absorb(&d);
                mirror.absorb(&d); // duplicate ship: must change nothing
            }
        }
        let d = pusher.delta();
        mirror.absorb(&d);
        let again = mirror.clone();
        mirror.absorb(&d);
        assert_eq!(mirror, again, "re-absorbing the latest delta must be a no-op");
        assert_eq!(mirror.delta(), pusher.delta(), "mirror must converge to the push state");
    }

    #[test]
    fn absorb_handles_gaps_by_adopting() {
        let mut pusher = BlockSketch::new(8, 2);
        let mut mirror = BlockSketch::new(8, 2);
        for i in 0..8 {
            pusher.push(i as f64);
        }
        mirror.absorb(&pusher.delta());
        // Mirror misses many exchanges; everything it held expires.
        for i in 8..40 {
            pusher.push(i as f64);
        }
        mirror.absorb(&pusher.delta());
        assert_eq!(mirror.delta(), pusher.delta());
        // A stale delta arriving late is ignored.
        let old = SketchDelta { first: 0, blocks: vec![(1.0, 1.0); 4] };
        let before = mirror.clone();
        mirror.absorb(&old);
        assert_eq!(mirror, before);
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let mut sk = BlockSketch::new(16, 4);
        for i in 0..23 {
            sk.push((i as f64 * 1.3).sin() * 7.0);
        }
        let mut w = Writer::new();
        sk.write_into(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).expect("magic");
        let back = BlockSketch::read_from(&mut r).expect("decodes");
        r.expect_end().expect("fully consumed");
        assert_eq!(back, sk);
        // Continuing to push stays bit-identical.
        let mut live = sk;
        let mut revived = back;
        for i in 0..9 {
            live.push(i as f64);
            revived.push(i as f64);
        }
        assert_eq!(live, revived);
    }

    #[test]
    fn corrupt_geometry_rejected() {
        let mut w = Writer::new();
        w.usize(8); // window
        w.usize(3); // block: does not divide 8
        w.u64(0);
        w.usize(0);
        w.f64(0.0);
        w.f64(0.0);
        w.usize(0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert!(matches!(
            BlockSketch::read_from(&mut r),
            Err(SnapshotError::Corrupt("sketch geometry"))
        ));
    }

    #[test]
    #[should_panic(expected = "block must divide")]
    fn indivisible_block_rejected() {
        let _ = BlockSketch::new(10, 3);
    }
}
