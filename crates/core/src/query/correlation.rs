//! Correlation monitoring — §5.3.
//!
//! Every time a new level-`J` feature of a stream is computed (batch
//! algorithm, `c = 1`, `T_j = W`), a range query around the feature reports
//! every other synchronized stream whose current feature is within distance
//! `r` — the candidates for `corr ≥ 1 − r²/2` (the z-norm reduction of
//! §2.4). As in the paper's evaluation, reported pairs are **approximate**:
//! the filter is the feature distance (which lower-bounds the true z-norm
//! distance, so no true pair is ever dismissed), and the §6.3 precision
//! metric is the fraction of reported pairs that survive raw-window
//! verification. Verification can be kept inline (for precision runs) or
//! disabled (for timing runs).
//!
//! The only difference from a pattern query is the normalization, handled
//! analytically from the threaded (coefficients, sum, sum-of-squares)
//! triple: a z-normalized window has zero mean, so its leading ordered-DWT
//! coefficient vanishes and the *first `f` detail coefficients* carry the
//! signal ("the first f DWT coefficients retain most of the energy", §4).
//! Details are mean-invariant, so the feature is simply the ordered DWT of
//! the maintained approximation vector, coefficients `1..=f`, scaled by
//! `1/√(Σx² − w·μ²)`.

use stardust_dsp::haar;
use stardust_index::{bulk_load, Params, RStarTree, Rect};

use crate::config::Config;
use crate::normalize;
use crate::sketch::BlockSketch;
use crate::snapshot::{Reader, SnapshotError, Writer};
use crate::stream::{StreamId, Time};
use crate::summarizer::StreamSummary;

/// A reported (approximately) correlated pair at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedPair {
    /// The stream whose arrival triggered the report.
    pub a: StreamId,
    /// The other stream of the pair.
    pub b: StreamId,
    /// Feature time of stream `a` (the window of `a` ends here).
    pub time: Time,
    /// Feature time of stream `b`; equal to `time` for synchronized
    /// pairs, earlier for lagged pairs.
    pub time_other: Time,
    /// Distance between the two streams' features (≤ the true z-norm
    /// distance).
    pub feature_distance: f64,
    /// Exact correlation over the raw windows; `Some` only when inline
    /// verification is enabled.
    pub correlation: Option<f64>,
}

/// Running counters for the §6.3 metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorrelationStats {
    /// Pairs reported (feature distance within threshold).
    pub reported: u64,
    /// Reported pairs confirmed on the raw windows (only counted when
    /// inline verification is enabled).
    pub true_pairs: u64,
}

impl CorrelationStats {
    /// True pairs over reported pairs (1.0 when nothing was reported).
    /// Meaningful only when the monitor verifies inline.
    pub fn precision(&self) -> f64 {
        if self.reported == 0 {
            1.0
        } else {
            self.true_pairs as f64 / self.reported as f64
        }
    }
}

/// Continuous correlation monitoring over `M` synchronized streams.
///
/// ```
/// use stardust_core::query::correlation::CorrelationMonitor;
///
/// // Correlation over windows of 4·2² = 16 values, threshold corr ≥ 0.995.
/// let mut monitor = CorrelationMonitor::new(4, 3, 2, 0.1, 2);
/// let mut confirmed = 0;
/// for t in 0..64 {
///     let x = (t as f64 * 0.3).sin() * 5.0 + 10.0;
///     monitor.append(0, x);
///     // Stream 1 is an affine copy of stream 0: perfectly correlated.
///     for pair in monitor.append(1, 2.0 * x + 1.0) {
///         if pair.correlation.unwrap_or(0.0) > 0.995 {
///             confirmed += 1;
///         }
///     }
/// }
/// assert!(confirmed > 0);
/// ```
///
/// Streams must be appended round-robin (`0, 1, …, M−1, 0, 1, …`); each
/// unordered correlated pair is reported exactly once, when the later of
/// the two streams produces its feature for that time step. The feature
/// index holds exactly the current round's features (it is reset when the
/// first stream of a round emits), so maintenance is insert-only.
pub struct CorrelationMonitor {
    summaries: Vec<StreamSummary>,
    tree: RStarTree<(StreamId, Time)>,
    round: Option<Time>,
    /// Insertion-ordered mirror of the live tree entries. Snapshots
    /// serialize this instead of the tree; restoring re-inserts in the
    /// original order, reproducing the identical index structure in the
    /// synchronized (insert-only) mode.
    log: Vec<(Vec<f64>, StreamId, Time)>,
    /// Per-stream indexed features, oldest first (used when `lag_periods > 1`).
    entries: Vec<std::collections::VecDeque<(Vec<f64>, Time)>>,
    /// How many feature periods back a lagged partner may be (1 =
    /// synchronized only).
    lag_periods: usize,
    /// Per-stream sliding-window block sketches, maintained on every
    /// append. A sharded deployment ships these to its collector so
    /// cross-shard pairs can be pruned by the sketch distance bound
    /// (see [`crate::sketch`]); single-process use pays only the two
    /// accumulator adds per value.
    sketches: Vec<BlockSketch>,
    sketch_block: usize,
    radius: f64,
    level: usize,
    window: usize,
    f: usize,
    verify: bool,
    stats: CorrelationStats,
    telemetry: crate::telemetry::ClassTelemetry,
    index_telemetry: crate::telemetry::IndexTelemetry,
}

// Compact by hand: summaries and the feature tree carry full state.
impl std::fmt::Debug for CorrelationMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorrelationMonitor")
            .field("n_streams", &self.summaries.len())
            .field("window", &self.window)
            .field("f", &self.f)
            .field("radius", &self.radius)
            .field("lag_periods", &self.lag_periods)
            .field("verify", &self.verify)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl CorrelationMonitor {
    /// A monitor detecting correlations over windows of size
    /// `N = W·2^(levels−1)` with z-norm distance threshold `r` (equivalent
    /// correlation threshold `1 − r²/2`). Inline verification is enabled
    /// by default.
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`Config::validate`]) or a
    /// non-finite/negative radius.
    pub fn new(base_window: usize, levels: usize, f: usize, radius: f64, n_streams: usize) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "radius must be finite and nonnegative");
        // A single-stream monitor reports no pairs locally but still
        // maintains its summary and sketch — a sharded deployment needs
        // exactly that from one-stream shards to serve cross-shard
        // verification.
        assert!(n_streams >= 1, "correlation needs at least one stream");
        // The maintained approximation vector must be long enough to carry
        // the leading coefficient plus f details.
        let pyramid = (f + 1).next_power_of_two();
        assert!(
            pyramid <= base_window,
            "f = {f} needs an approximation pyramid of {pyramid} ≤ W = {base_window}"
        );
        let config = Config::batch(base_window, levels, pyramid, 1.0);
        config.validate();
        let level = levels - 1;
        let window = config.window_at(level);
        let summaries = (0..n_streams).map(|_| StreamSummary::new(config.clone())).collect();
        CorrelationMonitor {
            summaries,
            tree: RStarTree::with_params(f, Params::new(8)),
            round: None,
            log: Vec::new(),
            entries: (0..n_streams).map(|_| std::collections::VecDeque::new()).collect(),
            lag_periods: 1,
            sketches: (0..n_streams).map(|_| BlockSketch::new(window, base_window)).collect(),
            sketch_block: base_window,
            radius,
            level,
            window,
            f,
            verify: true,
            stats: CorrelationStats::default(),
            telemetry: crate::telemetry::ClassTelemetry::default(),
            index_telemetry: crate::telemetry::IndexTelemetry::default(),
        }
    }

    /// Attaches metric handles from `registry` (class `correlation`):
    /// per-append latency, probe/report/confirmation counters, summarizer
    /// lifecycle counters, and the feature index's structural counters.
    /// Telemetry is runtime state — snapshots never carry it, so call
    /// this again after [`Self::restore`].
    pub fn attach_telemetry(&mut self, registry: &stardust_telemetry::Registry) {
        self.telemetry = crate::telemetry::ClassTelemetry::new(registry, "correlation");
        self.index_telemetry = crate::telemetry::IndexTelemetry::new(registry);
        let summarizer = crate::telemetry::SummarizerTelemetry::new(registry);
        for summary in &mut self.summaries {
            summary.set_telemetry(summarizer.clone());
        }
        // Absorb any inserts that predate the attachment (e.g. a restore
        // rebuilding the tree) so the series starts consistent.
        self.index_telemetry.record(self.tree.reset_counters());
    }

    /// Enables or disables inline raw-window verification (disable for
    /// timing runs; reported pairs then carry `correlation: None`).
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Also reports **lagged** correlations: partners whose feature is up
    /// to `periods − 1` update periods (of `W` ticks each) in the past —
    /// the "lag time" dimension of StatStream that §3 mentions. `1`
    /// (default) reports synchronized pairs only.
    ///
    /// # Panics
    /// Panics if `periods` is zero or the monitor has already consumed
    /// values (the raw-history size depends on the lag horizon).
    pub fn with_lag_periods(mut self, periods: usize) -> Self {
        assert!(periods >= 1, "need at least one period");
        assert!(self.summaries[0].now().is_none(), "configure the lag before feeding values");
        // Verifying a lagged pair needs the partner's full window, which
        // ends up to `periods − 1` update periods in the past.
        let mut config = self.summaries[0].config().clone();
        config.history = self.window + (periods - 1) * config.base_window;
        self.summaries =
            (0..self.summaries.len()).map(|_| StreamSummary::new(config.clone())).collect();
        self.lag_periods = periods;
        self
    }

    /// Overrides the block granularity of the per-stream sliding-window
    /// sketches (default: the base window `W`, giving `2^(levels−1)`
    /// blocks per sketch). A finer block tightens the cross-shard prune
    /// bound at the cost of proportionally more exchange traffic.
    ///
    /// # Panics
    /// Panics unless `block` divides the correlation window `N`, or if
    /// the monitor has already consumed values.
    pub fn with_sketch_block(mut self, block: usize) -> Self {
        assert!(self.summaries[0].now().is_none(), "configure the sketch before feeding values");
        assert!(
            block >= 1 && self.window.is_multiple_of(block),
            "sketch block must divide the correlation window N = {}",
            self.window
        );
        self.sketch_block = block;
        self.sketches =
            (0..self.summaries.len()).map(|_| BlockSketch::new(self.window, block)).collect();
        self
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.summaries.len()
    }

    /// The sliding-window sketch of one stream.
    pub fn sketch(&self, stream: StreamId) -> &BlockSketch {
        &self.sketches[stream as usize]
    }

    /// Block granularity of the per-stream sketches.
    pub fn sketch_block(&self) -> usize {
        self.sketch_block
    }

    /// The correlation window size `N`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Cumulative reported/true-pair counters.
    pub fn stats(&self) -> CorrelationStats {
        self.stats
    }

    /// The summary of one stream.
    pub fn summary(&self, stream: StreamId) -> &StreamSummary {
        &self.summaries[stream as usize]
    }

    /// Serializes the monitor: stream summaries, parameters, counters,
    /// and the live feature-index entries in insertion order. The
    /// R\*-tree itself is derived state; [`Self::restore`] rebuilds it
    /// from the logged entries with one STR bulk load. The rebuilt tree
    /// may differ structurally from the live one, but reported pairs are
    /// bit-identical in both modes: a range query returns the same entry
    /// set from any valid tree over the same entries, and reports are
    /// canonically ordered by (partner stream, partner time) before
    /// verification.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize(self.summaries.len());
        for s in &self.summaries {
            w.blob(&s.snapshot());
        }
        w.usize(self.f);
        w.f64(self.radius);
        w.usize(self.lag_periods);
        w.u8(self.verify as u8);
        match self.round {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.u64(t);
            }
        }
        w.u64(self.stats.reported);
        w.u64(self.stats.true_pairs);
        w.usize(self.log.len());
        for (coords, stream, t) in &self.log {
            w.f64_slice(coords);
            w.u64(*stream as u64);
            w.u64(*t);
        }
        w.usize(self.sketch_block);
        for sketch in &self.sketches {
            sketch.write_into(&mut w);
        }
        w.finish()
    }

    /// Rebuilds a monitor from [`Self::snapshot`] bytes.
    ///
    /// # Errors
    /// [`SnapshotError`] on a truncated, corrupt, or inconsistent buffer.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes)?;
        let n_streams = r.count(16)?;
        if n_streams == 0 {
            return Err(SnapshotError::Corrupt("correlation needs at least one stream"));
        }
        let mut summaries = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            summaries.push(StreamSummary::restore(r.blob()?)?);
        }
        let config = summaries[0].config().clone();
        if summaries.iter().any(|s| *s.config() != config) {
            return Err(SnapshotError::Corrupt("correlation summaries disagree on config"));
        }
        let f = r.usize()?;
        if (f + 1).next_power_of_two() != config.dwt_coeffs {
            return Err(SnapshotError::Corrupt("feature count disagrees with config"));
        }
        let radius = r.f64()?;
        if !(radius.is_finite() && radius >= 0.0) {
            return Err(SnapshotError::Corrupt("invalid correlation radius"));
        }
        let lag_periods = r.usize()?;
        if lag_periods == 0 {
            return Err(SnapshotError::Corrupt("zero lag periods"));
        }
        let verify = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("verify tag")),
        };
        let round = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return Err(SnapshotError::Corrupt("round tag")),
        };
        let stats = CorrelationStats { reported: r.u64()?, true_pairs: r.u64()? };
        let n_entries = r.count(24)?;
        let mut log = Vec::with_capacity(n_entries);
        let mut entries: Vec<std::collections::VecDeque<(Vec<f64>, Time)>> =
            (0..n_streams).map(|_| std::collections::VecDeque::new()).collect();
        for _ in 0..n_entries {
            let coords = r.f64_vec()?;
            if coords.len() != f {
                return Err(SnapshotError::Corrupt("feature arity"));
            }
            let stream = StreamId::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("oversized stream id"))?;
            if stream as usize >= n_streams {
                return Err(SnapshotError::Corrupt("entry stream out of range"));
            }
            let t = r.u64()?;
            if lag_periods > 1 {
                entries[stream as usize].push_back((coords.clone(), t));
            }
            log.push((coords, stream, t));
        }
        let level = config.levels - 1;
        let window = config.window_at(level);
        let sketch_block = r.usize()?;
        if sketch_block == 0 || !window.is_multiple_of(sketch_block) {
            return Err(SnapshotError::Corrupt("sketch block disagrees with window"));
        }
        let mut sketches = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let sketch = BlockSketch::read_from(&mut r)?;
            if sketch.window() != window || sketch.block() != sketch_block {
                return Err(SnapshotError::Corrupt("sketch geometry disagrees with monitor"));
            }
            sketches.push(sketch);
        }
        r.expect_end()?;
        // One bottom-up STR build instead of N incremental inserts; query
        // results over the same entry set are tree-shape independent.
        let tree = bulk_load(
            f,
            Params::new(8),
            log.iter().map(|(coords, stream, t)| (Rect::point(coords), (*stream, *t))).collect(),
        );
        Ok(CorrelationMonitor {
            summaries,
            tree,
            round,
            log,
            entries,
            lag_periods,
            sketches,
            sketch_block,
            radius,
            level,
            window,
            f,
            verify,
            stats,
            telemetry: crate::telemetry::ClassTelemetry::default(),
            index_telemetry: crate::telemetry::IndexTelemetry::default(),
        })
    }

    /// Appends one value to one stream; returns the pairs reported by this
    /// arrival.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) -> Vec<CorrelatedPair> {
        let span = self.telemetry.latency_span();
        let s = stream as usize;
        self.summaries[s].push_quiet(value);
        // The sketch sees every value, before any early return — its
        // clock must stay in lockstep with the summary's.
        self.sketches[s].push(value);
        let t = self.summaries[s].now().expect("just pushed");
        // Fast path: no level-J feature due at this time step.
        if !(t + 1).is_multiple_of(self.summaries[s].config().base_window as u64)
            || t + 1 < self.window as u64
        {
            return Vec::new();
        }
        let Some(mbr) = self.summaries[s].mbr_at(self.level, t) else {
            return Vec::new();
        };
        // Analytic z-normalization of the degenerate (c = 1) feature: the
        // detail coefficients are mean-invariant, so transforming the
        // maintained approximation vector and scaling by the centered
        // energy gives the z-normed window's ordered coefficients 1..=f.
        let w = self.window as f64;
        let mean = mbr.sum.0 / w;
        let energy = (mbr.sumsq.0 - w * mean * mean).max(0.0);
        let period = self.summaries[s].config().base_window as u64;
        if self.lag_periods == 1 {
            // Synchronized-only: the previous round's features are stale
            // and would be filtered anyway, so reset the index at each
            // round boundary (insert-only maintenance — measurably faster
            // than per-feature deletion).
            if self.round != Some(t) {
                self.round = Some(t);
                self.tree = RStarTree::with_params(self.f, Params::new(8));
                self.log.clear();
            }
        } else {
            // Lagged mode: retire this stream's entries that fell out of
            // the lag horizon (other streams retire on their own turns;
            // the query filters any stragglers by time).
            let horizon = t.saturating_sub(self.lag_periods as u64 * period);
            while self.entries[s].front().is_some_and(|&(_, ft)| ft <= horizon) {
                let (coords, ft) = self.entries[s].pop_front().expect("just checked");
                let removed = self.tree.remove(&Rect::point(&coords), &(stream, ft));
                debug_assert!(removed);
                if let Some(pos) = self.log.iter().position(|&(_, ls, lt)| ls == stream && lt == ft)
                {
                    self.log.remove(pos);
                }
            }
        }
        if energy <= f64::EPSILON {
            // z-norm undefined for (near-)constant windows; the stream
            // simply has no current feature.
            return Vec::new();
        }
        let scale = 1.0 / energy.sqrt();
        let ordered = haar::dwt(mbr.bounds.lo());
        let coords: Vec<f64> = ordered[1..=self.f].iter().map(|c| c * scale).collect();

        // Range query before inserting ourselves; partners from other
        // streams within the lag horizon are reports.
        self.telemetry.checks.inc();
        let horizon = t.saturating_sub(self.lag_periods as u64 * period);
        let mut reported: Vec<(StreamId, Time, f64)> = Vec::new();
        self.tree.search_within(&coords, self.radius, |rect, &(other, ot)| {
            // Point entries: min_dist to the rect is the exact feature
            // distance.
            if other != stream && ot > horizon {
                reported.push((other, ot, rect.min_dist_point(&coords)));
            }
        });
        // Canonical report order: tree traversal order depends on tree
        // shape (incremental vs bulk-loaded), so sort by the integer keys
        // to keep emitted pairs bit-identical across rebuild paths.
        reported.sort_by_key(|&(other, ot, _)| (other, ot));
        self.tree.insert(Rect::point(&coords), (stream, t));
        self.log.push((coords.clone(), stream, t));
        if self.lag_periods > 1 {
            self.entries[s].push_back((coords, t));
        }

        let mut pairs = Vec::with_capacity(reported.len());
        for (other, time_other, feature_distance) in reported {
            self.stats.reported += 1;
            self.telemetry.candidates.inc();
            let correlation = if self.verify {
                let win_a = self.summaries[s]
                    .history()
                    .window(t, self.window)
                    .expect("feature implies full window");
                let win_b = self.summaries[other as usize]
                    .history()
                    .window(time_other, self.window)
                    .expect("indexed feature implies full window");
                let corr = normalize::correlation(&win_a, &win_b);
                if corr.is_some_and(|c| normalize::correlation_to_distance(c) <= self.radius) {
                    self.stats.true_pairs += 1;
                    self.telemetry.confirmed.inc();
                }
                corr
            } else {
                None
            };
            pairs.push(CorrelatedPair {
                a: stream,
                b: other,
                time: t,
                time_other,
                feature_distance,
                correlation,
            });
        }
        if self.index_telemetry.node_visits.is_enabled() {
            self.index_telemetry.record(self.tree.reset_counters());
        }
        drop(span);
        pairs
    }

    /// Brute-force ground truth: all pairs correlated within the threshold
    /// over the windows ending at time `t` (for tests and precision
    /// baselines).
    pub fn linear_scan_pairs(&self, t: Time) -> Vec<(StreamId, StreamId, f64)> {
        let mut out = Vec::new();
        // z-normalize each window once and evaluate all O(n²) pairs on the
        // normalized vectors — `z_norm` is deterministic, so the per-pair
        // correlations are bit-identical to `normalize::correlation` on the
        // raw windows, at a third of the arithmetic.
        let znormed: Vec<Option<Vec<f64>>> = self
            .summaries
            .iter()
            .map(|s| s.history().window(t, self.window).and_then(|w| normalize::z_norm(&w)))
            .collect();
        for a in 0..self.summaries.len() {
            for b in a + 1..self.summaries.len() {
                let (Some(za), Some(zb)) = (&znormed[a], &znormed[b]) else { continue };
                let corr = normalize::correlation_of_znormed(za, zb);
                if normalize::correlation_to_distance(corr) <= self.radius {
                    out.push((a as StreamId, b as StreamId, corr));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Streams 0 and 1 follow (almost) the same walk, stream 2 an
    /// independent one.
    fn feed(mon: &mut CorrelationMonitor, n: usize) -> Vec<Vec<CorrelatedPair>> {
        let mut s1 = 42u64;
        let mut s2 = 4242u64;
        let (mut a, mut c) = (50.0f64, 50.0f64);
        let mut reports = Vec::new();
        for i in 0..n {
            a += rng(&mut s1) - 0.5;
            c += rng(&mut s2) - 0.5;
            let b = a + 0.01 * ((i % 7) as f64 - 3.0);
            let mut batch = Vec::new();
            batch.extend(mon.append(0, a));
            batch.extend(mon.append(1, b));
            batch.extend(mon.append(2, c));
            reports.push(batch);
        }
        reports
    }

    #[test]
    fn detects_planted_correlation() {
        let mut mon = CorrelationMonitor::new(8, 3, 4, 0.2, 3);
        let reports = feed(&mut mon, 200);
        let verified: Vec<&CorrelatedPair> = reports
            .iter()
            .flatten()
            .filter(|p| p.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= 0.2))
            .collect();
        assert!(!verified.is_empty(), "correlated pair never confirmed");
        assert!(
            verified.iter().all(|p| (p.a.min(p.b), p.a.max(p.b)) == (0, 1)),
            "only streams 0,1 are truly correlated"
        );
    }

    #[test]
    fn no_false_dismissals_against_ground_truth() {
        // Feature distance lower-bounds true distance, so reported ⊇ truth
        // at every feature-complete step.
        let mut mon = CorrelationMonitor::new(4, 3, 2, 0.5, 3);
        let mut s1 = 42u64;
        let mut s2 = 4242u64;
        let (mut a, mut c) = (50.0f64, 50.0f64);
        for i in 0..160u64 {
            a += rng(&mut s1) - 0.5;
            c += rng(&mut s2) - 0.5;
            let b = a + 0.01 * ((i % 7) as f64 - 3.0);
            let mut batch = Vec::new();
            batch.extend(mon.append(0, a));
            batch.extend(mon.append(1, b));
            batch.extend(mon.append(2, c));
            if (i + 1) % 4 != 0 || (i + 1) < 16 {
                assert!(batch.is_empty(), "no features due at t={i}");
                continue;
            }
            let got: BTreeSet<(StreamId, StreamId)> =
                batch.iter().map(|p| (p.a.min(p.b), p.a.max(p.b))).collect();
            for &(x, y, _) in &mon.linear_scan_pairs(i) {
                assert!(got.contains(&(x, y)), "t={i}: true pair ({x},{y}) dismissed");
            }
            // And feature distances never exceed the radius.
            for p in &batch {
                assert!(p.feature_distance <= 0.5 + 1e-9);
            }
        }
    }

    #[test]
    fn verification_counters_bound_reports() {
        let mut mon = CorrelationMonitor::new(8, 3, 4, 0.3, 3);
        feed(&mut mon, 300);
        let st = mon.stats();
        assert!(st.true_pairs <= st.reported);
        assert!(st.true_pairs > 0);
        assert!(st.precision() > 0.0 && st.precision() <= 1.0);
    }

    #[test]
    fn unverified_mode_reports_without_correlation() {
        let mut mon = CorrelationMonitor::new(8, 3, 4, 0.3, 3).with_verification(false);
        let reports = feed(&mut mon, 300);
        let all: Vec<&CorrelatedPair> = reports.iter().flatten().collect();
        assert!(!all.is_empty());
        assert!(all.iter().all(|p| p.correlation.is_none()));
        assert_eq!(mon.stats().true_pairs, 0);
        assert_eq!(mon.stats().reported, all.len() as u64);
    }

    #[test]
    fn constant_stream_is_skipped() {
        let mut mon = CorrelationMonitor::new(4, 2, 2, 1.0, 2);
        for i in 0..64 {
            let _ = mon.append(0, 5.0); // constant: z-norm undefined
            let _ = mon.append(1, (i as f64 * 0.3).sin());
        }
        // No panic, no pairs involving the constant stream.
        assert_eq!(mon.stats().reported, 0);
    }

    #[test]
    fn higher_f_yields_fewer_or_equal_reports() {
        // More coefficients = tighter filter (Fig. 6 mechanism).
        let mut counts = Vec::new();
        for f in [2usize, 7] {
            let mut mon = CorrelationMonitor::new(8, 3, f, 0.8, 3);
            feed(&mut mon, 400);
            counts.push(mon.stats().reported);
        }
        assert!(counts[1] <= counts[0], "f=8 reported {} > f=2 reported {}", counts[1], counts[0]);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn needs_one_stream() {
        let _ = CorrelationMonitor::new(8, 2, 2, 0.1, 0);
    }

    /// A single-stream monitor reports no pairs but keeps its summary
    /// and sketch live — what one-stream shards contribute to the
    /// cross-shard path.
    #[test]
    fn single_stream_monitor_serves_sketch_and_windows() {
        let mut mon = CorrelationMonitor::new(4, 2, 2, 0.5, 1);
        for i in 0..16u64 {
            assert!(mon.append(0, (i as f64 * 0.7).sin()).is_empty());
        }
        assert_eq!(mon.stats().reported, 0);
        assert!(mon.sketch(0).is_complete());
        assert_eq!(mon.sketch(0).end_time(), Some(15));
        assert!(mon.summary(0).history().window(15, mon.window()).is_some());
    }

    /// The sketch clock tracks the stream clock exactly, and a finer
    /// block still aligns with feature times.
    #[test]
    fn sketches_stay_synchronized_with_summaries() {
        let mut mon = CorrelationMonitor::new(8, 2, 2, 0.5, 2).with_sketch_block(4);
        let mut seed = 5u64;
        for _ in 0..100 {
            for s in 0..2 {
                let _ = mon.append(s, rng(&mut seed) * 9.0);
            }
        }
        for s in 0..2u32 {
            let now = mon.summary(s).now().expect("fed");
            assert_eq!(mon.sketch(s).end_time(), Some(now - (now + 1) % 4));
        }
        let lb = mon.sketch(0).distance_lower_bound(mon.sketch(1));
        assert!(lb.is_some(), "aligned complete sketches must produce a bound");
    }

    /// Stream 1 replays stream 0 with a delay of exactly 2 update periods;
    /// lagged mode must find the pair, synchronized mode must not.
    #[test]
    fn lagged_replay_is_detected() {
        let delay = 16usize; // 2 periods of W = 8
        let make = |lag: usize| {
            let mut mon = CorrelationMonitor::new(8, 3, 4, 0.3, 2).with_verification(true);
            if lag > 1 {
                mon = mon.with_lag_periods(lag);
            }
            let mut s1 = 7u64;
            let mut a = 50.0f64;
            let mut walk = Vec::new();
            let mut lagged_hits = 0usize;
            for i in 0..400usize {
                a += rng(&mut s1) - 0.5;
                walk.push(a);
                let b = if i >= delay { walk[i - delay] } else { 50.0 };
                mon.append(0, a);
                for p in mon.append(1, b) {
                    if p.time != p.time_other {
                        lagged_hits += 1;
                        // The verified correlation over the shifted windows
                        // must be near-perfect when the lag matches.
                        if p.b == 0 && p.time - p.time_other == delay as u64 {
                            assert!(p.correlation.unwrap_or(0.0) > 0.999);
                        }
                    }
                }
            }
            lagged_hits
        };
        assert_eq!(make(1), 0, "synchronized mode must not report lagged pairs");
        assert!(make(4) > 0, "lagged mode must find the delayed replay");
    }

    /// Lagged pairs respect the horizon: time_other is never more than
    /// lag_periods·W in the past.
    #[test]
    fn lag_horizon_is_enforced() {
        let mut mon =
            CorrelationMonitor::new(4, 2, 2, 2.0, 2).with_verification(false).with_lag_periods(3);
        let mut s1 = 3u64;
        let mut s2 = 33u64;
        let (mut a, mut b) = (10.0f64, 20.0f64);
        for _ in 0..200 {
            a += rng(&mut s1) - 0.5;
            b += rng(&mut s2) - 0.5;
            for p in mon.append(0, a).into_iter().chain(mon.append(1, b)) {
                assert!(p.time - p.time_other < 3 * 4, "{p:?}");
            }
        }
    }
}
