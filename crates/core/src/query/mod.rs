//! The three monitoring query classes of the paper (§5).

pub mod aggregate;
pub mod correlation;
pub mod pattern;
pub mod trend;
