//! Aggregate monitoring — Algorithm 2 plus the false-alarm analysis of
//! §5.1.
//!
//! A query window `w = b·W` is partitioned along the ones in the binary
//! representation of `b`; the current aggregate is composed from the MBR
//! extents of the sub-windows' features, yielding an interval `[lo, hi]`
//! with `hi ≥` the true aggregate. When `hi` crosses the threshold the most
//! recent raw subsequence is retrieved and the true aggregate verified —
//! only verified crossings raise an alarm, but every crossing costs a
//! verification, which is what the precision measurements of §6.1 count.

use crate::config::Config;
use crate::error::QueryError;
use crate::snapshot::{Reader, SnapshotError, Writer};
use crate::stream::Time;
use crate::summarizer::StreamSummary;
use crate::transform::{MergePrecision, TransformKind};

/// Binary decomposition of a window (§5.1): the ascending resolution levels
/// `j` with `Σ 2^j · base = window`. The first entry covers the most recent
/// values.
///
/// Errors if the window is not a positive multiple of `base` or requires a
/// level above `max_level`.
pub fn decompose(window: usize, base: usize, max_level: usize) -> Result<Vec<usize>, QueryError> {
    let err = QueryError::LengthNotDecomposable { len: window, base, max_level };
    if window == 0 || base == 0 || !window.is_multiple_of(base) {
        return Err(err);
    }
    let mut b = window / base;
    let mut levels = Vec::new();
    let mut j = 0usize;
    while b > 0 {
        if b & 1 == 1 {
            if j > max_level {
                return Err(err);
            }
            levels.push(j);
        }
        b >>= 1;
        j += 1;
    }
    Ok(levels)
}

/// A monitored window with its alarm threshold (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSpec {
    /// Window size `w` (a multiple of the base window `W`).
    pub window: usize,
    /// Alarm threshold `τ`.
    pub threshold: f64,
}

/// One candidate alarm: the approximation crossed the threshold and the
/// raw data was checked.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Which monitored window fired.
    pub window: usize,
    /// Current time of the crossing.
    pub time: Time,
    /// Upper bound of the composed interval.
    pub upper_bound: f64,
    /// True aggregate over the raw window.
    pub true_value: f64,
    /// `true` if the true aggregate also crossed the threshold.
    pub is_true_alarm: bool,
}

/// Running alarm counters, the §6.1 metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlarmStats {
    /// Warm-window evaluations: each time a monitored window's composed
    /// interval was inspected against its threshold. The denominator of
    /// the firing-rate that Eq. 4–7 model.
    pub checks: u64,
    /// Threshold crossings of the upper bound (each costs a verification).
    pub candidates: u64,
    /// Crossings confirmed on the raw data.
    pub true_alarms: u64,
}

impl AlarmStats {
    /// Precision: true alarms over total alarms raised (1.0 when nothing
    /// was raised).
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.true_alarms as f64 / self.candidates as f64
        }
    }

    /// False-alarm rate, `1 − precision`.
    pub fn false_alarm_rate(&self) -> f64 {
        1.0 - self.precision()
    }

    /// Fraction of evaluations in which the upper bound crossed the
    /// threshold — the observable that Eq. 6's
    /// `Pr(X_{T·w} ≥ τ)` predicts under the §5.1 stream model (0.0 when
    /// nothing was checked).
    pub fn candidate_rate(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.candidates as f64 / self.checks as f64
        }
    }
}

struct Monitored {
    spec: WindowSpec,
    /// The decomposed covering window: `spec.window` rounded up to a
    /// multiple of `W`. Equal to `spec.window` for aligned windows.
    effective: usize,
    levels: Vec<usize>,
}

/// Continuous aggregate monitoring of one stream over a set of windows
/// (the Stardust side of the §6.1 experiments).
pub struct AggregateMonitor {
    summary: StreamSummary,
    windows: Vec<Monitored>,
    stats: AlarmStats,
    scratch: Vec<f64>,
    /// Detached (free) unless attached; never serialized.
    telemetry: crate::telemetry::ClassTelemetry,
}

// Compact by hand: the summary carries full per-level box state.
impl std::fmt::Debug for AggregateMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregateMonitor")
            .field("windows", &self.windows.iter().map(|m| m.spec).collect::<Vec<_>>())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl AggregateMonitor {
    /// A monitor with the given summarizer configuration and monitored
    /// windows.
    ///
    /// Windows that are not multiples of `W` are monitored through the
    /// next multiple (the minimal covering window, inflation
    /// `T ≤ 1 + W/w` — tighter than SWT's dyadic `T < 2`); verification
    /// always uses the exact window. MIN cannot be covered this way (a
    /// larger window only lower-bounds the minimum), so MIN windows must
    /// be exact multiples. For SUM the covering bound relies on the §2.1
    /// stream model (values in `[0, R_max]`, nonnegative).
    ///
    /// # Panics
    /// Panics if the transform is DWT (no scalar aggregate), a window is
    /// not decomposable over the configured levels, a MIN window is not a
    /// multiple of `W`, or a covering window exceeds the history.
    pub fn new(config: Config, specs: &[WindowSpec]) -> Self {
        assert_ne!(
            config.transform,
            TransformKind::Dwt,
            "aggregate monitoring needs a scalar transform"
        );
        config.validate();
        let windows = specs
            .iter()
            .map(|&spec| {
                assert!(spec.window >= 1, "window must be positive");
                let effective =
                    spec.window.div_ceil(config.base_window) * config.base_window;
                assert!(
                    effective == spec.window || config.transform != TransformKind::Min,
                    "MIN window {} must be a multiple of W = {} (covering windows only upper-bound SUM/MAX/SPREAD)",
                    spec.window,
                    config.base_window
                );
                assert!(
                    effective <= config.history,
                    "window {} (covered by {}) exceeds history {}",
                    spec.window,
                    effective,
                    config.history
                );
                let levels = decompose(effective, config.base_window, config.levels - 1)
                    .unwrap_or_else(|e| panic!("window {}: {e}", spec.window));
                Monitored { spec, effective, levels }
            })
            .collect();
        AggregateMonitor {
            summary: StreamSummary::new(config),
            windows,
            stats: AlarmStats::default(),
            scratch: Vec::new(),
            telemetry: crate::telemetry::ClassTelemetry::default(),
        }
    }

    /// The underlying stream summary.
    pub fn summary(&self) -> &StreamSummary {
        &self.summary
    }

    /// Attaches per-class telemetry (and summarizer counters) from
    /// `registry`. Telemetry is runtime state: it survives neither
    /// [`Self::snapshot`] nor [`Self::restore`]; re-attach after
    /// restoring.
    pub fn attach_telemetry(&mut self, registry: &stardust_telemetry::Registry) {
        self.telemetry = crate::telemetry::ClassTelemetry::new(registry, "aggregate");
        self.summary.set_telemetry(crate::telemetry::SummarizerTelemetry::new(registry));
    }

    /// Cumulative alarm statistics.
    pub fn stats(&self) -> AlarmStats {
        self.stats
    }

    /// Appends a value and checks every monitored window; returns the
    /// candidate alarms raised at this time step.
    pub fn push(&mut self, value: f64) -> Vec<Alarm> {
        let span = self.telemetry.latency_span();
        self.summary.push_quiet(value);
        let t = self.summary.now().expect("just pushed");
        let mut alarms = Vec::new();
        for i in 0..self.windows.len() {
            let (window, threshold) = (self.windows[i].spec.window, self.windows[i].spec.threshold);
            let effective = self.windows[i].effective;
            if (t + 1) < effective as u64 {
                continue;
            }
            let Some((_, hi)) = compose_interval(
                &self.summary,
                &self.windows[i].levels,
                t,
                self.summary.config().transform,
            ) else {
                continue;
            };
            self.stats.checks += 1;
            self.telemetry.checks.inc();
            if hi < threshold {
                continue;
            }
            // Candidate alarm: retrieve the raw subsequence and verify.
            self.stats.candidates += 1;
            self.telemetry.candidates.inc();
            let mut buf = std::mem::take(&mut self.scratch);
            let ok = self.summary.history().copy_window(t, window, &mut buf);
            debug_assert!(ok, "window within history");
            let true_value =
                self.summary.config().transform.scalar_aggregate(&buf).expect("scalar transform");
            self.scratch = buf;
            let is_true_alarm = true_value >= threshold;
            if is_true_alarm {
                self.stats.true_alarms += 1;
                self.telemetry.confirmed.inc();
            }
            alarms.push(Alarm { window, time: t, upper_bound: hi, true_value, is_true_alarm });
        }
        drop(span);
        alarms
    }

    /// Serializes the monitor — summary, window specs, and alarm
    /// counters — into a self-describing byte buffer. The decomposition
    /// tables are derived state and are rebuilt by [`Self::restore`].
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.blob(&self.summary.snapshot());
        w.u64(self.stats.checks);
        w.u64(self.stats.candidates);
        w.u64(self.stats.true_alarms);
        w.usize(self.windows.len());
        for m in &self.windows {
            w.usize(m.spec.window);
            w.f64(m.spec.threshold);
        }
        w.finish()
    }

    /// Rebuilds a monitor from [`Self::snapshot`] bytes; continuation is
    /// bit-identical to the uninterrupted original.
    ///
    /// # Errors
    /// [`SnapshotError`] on a truncated, corrupt, or inconsistent buffer.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes)?;
        let summary = StreamSummary::restore(r.blob()?)?;
        let stats = AlarmStats { checks: r.u64()?, candidates: r.u64()?, true_alarms: r.u64()? };
        let n = r.count(16)?;
        let mut windows = Vec::with_capacity(n);
        let config = summary.config().clone();
        if config.transform == TransformKind::Dwt {
            return Err(SnapshotError::Corrupt("aggregate snapshot with DWT transform"));
        }
        for _ in 0..n {
            let spec = WindowSpec { window: r.usize()?, threshold: r.f64()? };
            if spec.window == 0 {
                return Err(SnapshotError::Corrupt("zero aggregate window"));
            }
            let effective = spec.window.div_ceil(config.base_window) * config.base_window;
            if effective != spec.window && config.transform == TransformKind::Min {
                return Err(SnapshotError::Corrupt("unaligned MIN window"));
            }
            if effective > config.history {
                return Err(SnapshotError::Corrupt("window exceeds history"));
            }
            let levels = decompose(effective, config.base_window, config.levels - 1)
                .map_err(|_| SnapshotError::Corrupt("window not decomposable"))?;
            windows.push(Monitored { spec, effective, levels });
        }
        r.expect_end()?;
        Ok(AggregateMonitor {
            summary,
            windows,
            stats,
            scratch: Vec::new(),
            telemetry: crate::telemetry::ClassTelemetry::default(),
        })
    }

    /// The current composed interval for the monitored window of size `w`
    /// (`None` during warm-up or if `w` is not monitored). For unaligned
    /// windows this is the covering window's interval, whose upper bound
    /// still dominates the true aggregate.
    pub fn window_interval(&self, w: usize) -> Option<(f64, f64)> {
        let t = self.summary.now()?;
        let m = self.windows.iter().find(|m| m.spec.window == w)?;
        if (t + 1) < m.effective as u64 {
            return None;
        }
        compose_interval(&self.summary, &m.levels, t, self.summary.config().transform)
    }
}

/// Composes the aggregate interval for a decomposed window ending at `t`
/// (the merge loop of Algorithm 2). Returns `None` if some sub-window
/// feature is unavailable.
fn compose_interval(
    summary: &StreamSummary,
    levels: &[usize],
    t: Time,
    kind: TransformKind,
) -> Option<(f64, f64)> {
    let base = summary.config().base_window;
    let mut t_cur = t;
    let mut acc: Option<stardust_dsp::mbr_transform::Bounds> = None;
    for (i, &j) in levels.iter().enumerate() {
        let mbr = summary.mbr_at(j, t_cur)?;
        acc = Some(match acc {
            None => mbr.bounds.clone(),
            // Sub-windows are disjoint pieces of the full window; the
            // aggregate merges of Lemma 4.2 are valid for any
            // concatenation, not just equal halves.
            Some(b) => kind.merge_bounds(&mbr.bounds, &b, MergePrecision::Fast),
        });
        if i + 1 < levels.len() {
            t_cur = t_cur.checked_sub((base << j) as u64)?;
        }
    }
    kind.aggregate_interval(&acc?)
}

/// The analytical model of §5.1: effective monitoring ratios and
/// false-alarm rates (Equations 4–7).
pub mod analysis {
    use crate::stats::{phi, phi_inv};

    /// Eq. 7 — the effective monitoring ratio of Stardust for a window of
    /// `b·W` with box capacity `c`:
    /// `T′ = 1 + log₂(b)·(c−1)/(b·W)`.
    pub fn stardust_t_prime(b: u64, c: usize, base_window: usize) -> f64 {
        assert!(b >= 1 && base_window >= 1 && c >= 1);
        1.0 + (b as f64).log2() * (c as f64 - 1.0) / (b as f64 * base_window as f64)
    }

    /// The monitoring ratio of SWT for a window `w`: the window is watched
    /// through the smallest power-of-two multiple of `W` covering it, so
    /// `T = 2^⌈log₂(w/W)⌉·W / w ∈ [1, 2)`.
    pub fn swt_t(window: usize, base_window: usize) -> f64 {
        assert!(window >= base_window && base_window >= 1);
        let ratio = window as f64 / base_window as f64;
        let level = ratio.log2().ceil() as u32;
        (base_window as f64) * 2f64.powi(level as i32) / window as f64
    }

    /// The threshold `τ = μ·(1 + Φ⁻¹(1−p))` that bounds the tail
    /// probability of Eq. 4 by `p` under the normalized-deviation model of
    /// Eq. 5.
    pub fn tail_threshold(mu: f64, p: f64) -> f64 {
        mu * (1.0 + phi_inv(1.0 - p))
    }

    /// Eq. 6 (with the paper's notational typo resolved): the false-alarm
    /// rate of monitoring a window through a covering window `T·w`,
    /// `Pr(Z ≥ τ) = 1 − Φ((1 + Φ⁻¹(1−p))/T − 1)`. Equal to `p` at `T = 1`
    /// and increasing in `T`.
    pub fn false_alarm_rate(t: f64, p: f64) -> f64 {
        assert!(t >= 1.0, "monitoring ratio T must be at least 1");
        1.0 - phi((1.0 + phi_inv(1.0 - p)) / t - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_examples() {
        // Paper example: w = 26, W = 2 ⇒ b = 13 = 1101₂ ⇒ levels 0, 2, 3.
        assert_eq!(decompose(26, 2, 4).unwrap(), vec![0, 2, 3]);
        assert_eq!(decompose(8, 8, 0).unwrap(), vec![0]);
        assert_eq!(decompose(24, 8, 4).unwrap(), vec![0, 1]);
    }

    #[test]
    fn decompose_errors() {
        assert!(decompose(26, 4, 4).is_err()); // not a multiple
        assert!(decompose(26, 2, 2).is_err()); // needs level 3
        assert!(decompose(0, 2, 4).is_err());
    }

    #[test]
    fn decomposition_sums_to_window() {
        for w in (2..200).step_by(2) {
            if let Ok(levels) = decompose(w, 2, 10) {
                let total: usize = levels.iter().map(|&j| 2usize << j).sum();
                assert_eq!(total, w);
            }
        }
    }

    fn bursty(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = 1.0 + ((i * 7) % 5) as f64 * 0.1;
                if (300..340).contains(&i) || (700..830).contains(&i) {
                    base + 8.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn exact_monitor_has_perfect_precision() {
        // c = 1: the composed interval is degenerate, so every candidate
        // verifies (§6.1: "Stardust with c = 1 is the exact algorithm").
        let cfg = Config::online(TransformKind::Sum, 10, 5, 1).with_history(400);
        let data = bursty(1000);
        let specs = [
            WindowSpec { window: 20, threshold: 60.0 },
            WindowSpec { window: 70, threshold: 250.0 },
            WindowSpec { window: 150, threshold: 400.0 },
        ];
        let mut mon = AggregateMonitor::new(cfg, &specs);
        for &x in &data {
            mon.push(x);
        }
        let st = mon.stats();
        assert!(st.candidates > 0, "bursts must trigger alarms");
        assert_eq!(st.candidates, st.true_alarms);
        assert_eq!(st.precision(), 1.0);
    }

    #[test]
    fn upper_bound_dominates_truth() {
        let cfg = Config::online(TransformKind::Sum, 10, 5, 8).with_history(400);
        let data = bursty(600);
        let specs = [WindowSpec { window: 70, threshold: f64::INFINITY }];
        let mut mon = AggregateMonitor::new(cfg, &specs);
        for (i, &x) in data.iter().enumerate() {
            mon.push(x);
            if i + 1 >= 70 {
                let (lo, hi) = mon.window_interval(70).expect("warm");
                let truth: f64 = data[i + 1 - 70..=i].iter().sum();
                assert!(lo <= truth + 1e-7 && truth <= hi + 1e-7, "t={i}: {lo} {truth} {hi}");
            }
        }
    }

    #[test]
    fn spread_monitoring_bounds_truth() {
        let cfg = Config::online(TransformKind::Spread, 10, 4, 5).with_history(200);
        let data = bursty(400);
        let specs = [WindowSpec { window: 30, threshold: f64::INFINITY }];
        let mut mon = AggregateMonitor::new(cfg, &specs);
        for (i, &x) in data.iter().enumerate() {
            mon.push(x);
            if i + 1 >= 30 {
                let (lo, hi) = mon.window_interval(30).expect("warm");
                let win = &data[i + 1 - 30..=i];
                let truth = TransformKind::Spread.scalar_aggregate(win).unwrap();
                assert!(lo <= truth + 1e-7 && truth <= hi + 1e-7);
            }
        }
    }

    #[test]
    fn larger_boxes_lose_precision_not_recall() {
        // Every true alarm is raised regardless of c (the upper bound never
        // misses); precision can only drop as c grows.
        let data = bursty(1000);
        let specs = [WindowSpec { window: 40, threshold: 100.0 }];
        let mut truth_count = None;
        let mut prev_precision = f64::NEG_INFINITY;
        for c in [25usize, 5, 1] {
            let cfg = Config::online(TransformKind::Sum, 10, 5, c).with_history(400);
            let mut mon = AggregateMonitor::new(cfg, &specs);
            for &x in &data {
                mon.push(x);
            }
            let st = mon.stats();
            match truth_count {
                None => truth_count = Some(st.true_alarms),
                Some(tc) => assert_eq!(tc, st.true_alarms, "recall must not depend on c"),
            }
            assert!(
                st.precision() >= prev_precision - 1e-12,
                "precision should not drop as c shrinks (c={c})"
            );
            prev_precision = st.precision();
        }
    }

    #[test]
    fn unaligned_windows_are_covered_without_misses() {
        // Window 33 with W = 10 is monitored through 40; recall must stay
        // perfect and the upper bound sound (nonnegative data).
        let data = bursty(800);
        let spec = WindowSpec { window: 33, threshold: 90.0 };
        let cfg = Config::online(TransformKind::Sum, 10, 4, 4).with_history(160);
        let mut mon = AggregateMonitor::new(cfg, &[spec]);
        let mut true_alarms = Vec::new();
        for (i, &x) in data.iter().enumerate() {
            for a in mon.push(x) {
                assert!(a.upper_bound + 1e-9 >= a.true_value, "covering bound must dominate");
                if a.is_true_alarm {
                    true_alarms.push(i as u64);
                }
            }
        }
        // Brute force over the exact window 33.
        let mut expect = Vec::new();
        for t in 32..data.len() {
            let s: f64 = data[t - 32..=t].iter().sum();
            if s >= 90.0 {
                expect.push(t as u64);
            }
        }
        assert_eq!(true_alarms, expect);
        assert!(!expect.is_empty(), "workload should contain alarms");
    }

    #[test]
    #[should_panic(expected = "MIN window")]
    fn unaligned_min_window_rejected() {
        let cfg = Config::online(TransformKind::Min, 10, 3, 1);
        let _ = AggregateMonitor::new(cfg, &[WindowSpec { window: 33, threshold: 0.0 }]);
    }

    #[test]
    fn analysis_matches_paper_example() {
        // §5.1: c = W = 64, b = 12 ⇒ T′ ≈ 1.2987, SWT T = 4/3.
        let tp = analysis::stardust_t_prime(12, 64, 64);
        assert!((tp - 1.2947).abs() < 0.01, "T' = {tp}");
        let t = analysis::swt_t(12 * 64, 64);
        assert!((t - 16.0 * 64.0 / 768.0).abs() < 1e-9);
        assert!((t - 1.3333).abs() < 1e-3);
    }

    #[test]
    fn false_alarm_rate_properties() {
        let p = 0.01;
        assert!((analysis::false_alarm_rate(1.0, p) - p).abs() < 1e-6);
        let f12 = analysis::false_alarm_rate(1.2, p);
        let f13 = analysis::false_alarm_rate(1.33, p);
        assert!(p < f12 && f12 < f13, "{p} {f12} {f13}");
    }

    #[test]
    fn t_prime_improves_with_larger_b() {
        let a = analysis::stardust_t_prime(4, 64, 64);
        let b = analysis::stardust_t_prime(32, 64, 64);
        assert!(b < a);
        assert!(analysis::stardust_t_prime(12, 1, 64) == 1.0, "c = 1 is optimal");
    }

    #[test]
    #[should_panic(expected = "scalar transform")]
    fn rejects_dwt() {
        let cfg = Config::batch(8, 2, 2, 1.0);
        let _ = AggregateMonitor::new(cfg, &[]);
    }
}
