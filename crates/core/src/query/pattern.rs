//! Pattern monitoring — Algorithms 3 (online) and 4 (batch) of §5.2.
//!
//! Both algorithms answer: *which streams contain a subsequence within
//! normalized Euclidean distance `r` of the query `Q`?* The normalized
//! space of Eq. 2 scales every window by `1/(√w·R_max)`; since the DWT is
//! linear, we keep all index coordinates **unnormalized** and convert the
//! radius once to raw space, `R = r·√|Q|·R_max`, so one set of per-level
//! trees serves queries of any length.
//!
//! * **Online** (index built with `T_j = 1`): `Q` is partitioned along the
//!   binary representation of `|Q|/W`; a range query at the first
//!   sub-query's level seeds candidates, which are then narrowed by
//!   *hierarchical radius refinement* — at each further sub-query the
//!   remaining radius shrinks to `√(r² − d_min²)` — walking the per-stream
//!   MBR threads rather than the index.
//! * **Batch** (index built with `T_j = W`): all `W` prefixes' disjoint
//!   pieces of `Q` are gathered into one query MBR, enlarged by `R/√p`
//!   (multi-piece search), and a single rectangle query retrieves the
//!   candidates.

use std::collections::BTreeSet;

use stardust_dsp::haar;
use stardust_index::Rect;

use crate::engine::Stardust;
use crate::error::QueryError;
use crate::normalize::unit_sphere_scale;
use crate::query::aggregate::decompose;
use crate::stream::{StreamId, Time};

/// A one-time pattern query.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternQuery {
    /// The query sequence `Q`.
    pub sequence: Vec<f64>,
    /// Match threshold `r` in the normalized space of Eq. 2.
    pub radius: f64,
}

/// A verified match.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    /// Matching stream.
    pub stream: StreamId,
    /// Time of the last value of the matching subsequence.
    pub end_time: Time,
    /// Normalized distance to the query (≤ the query radius).
    pub distance: f64,
}

/// The outcome of a pattern query: the candidates that survived index
/// filtering (each cost a raw-data verification) and the verified matches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PatternAnswer {
    /// Candidate (stream, feature-time) pairs retrieved.
    pub candidates: Vec<(StreamId, Time)>,
    /// How many candidates verified to at least one true match.
    pub relevant: usize,
    /// Verified matches (deduplicated by (stream, end position)).
    pub matches: Vec<PatternMatch>,
}

impl PatternAnswer {
    /// Precision: relevant retrieved over total retrieved (§6: the quality
    /// metric of Fig. 5). 1.0 when nothing was retrieved.
    pub fn precision(&self) -> f64 {
        if self.candidates.is_empty() {
            1.0
        } else {
            self.relevant as f64 / self.candidates.len() as f64
        }
    }
}

fn check_query(q: &PatternQuery) -> Result<(), QueryError> {
    if q.sequence.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    if !q.radius.is_finite() || q.radius < 0.0 {
        return Err(QueryError::InvalidRadius);
    }
    Ok(())
}

/// **Algorithm 3** — answering a pattern query against an online-built
/// index (`T_j = 1`).
pub fn query_online(engine: &Stardust, q: &PatternQuery) -> Result<PatternAnswer, QueryError> {
    check_query(q)?;
    let cfg = engine.config();
    let (w0, f) = (cfg.base_window, cfg.dwt_coeffs);
    let len = q.sequence.len();
    let levels = decompose(len, w0, cfg.levels - 1)?;
    let r_abs = engine.raw_radius(q.radius, len);

    // Sub-query features in raw coefficient space, first = most recent
    // (the tail of Q), walking towards the head as levels ascend.
    let mut sub_feats = Vec::with_capacity(levels.len());
    let mut end = len;
    for &j in &levels {
        let w = w0 << j;
        sub_feats.push(haar::approx(&q.sequence[end - w..end], f));
        end -= w;
    }
    debug_assert_eq!(end, 0);

    let mut answer = PatternAnswer::default();
    let r_sq = r_abs * r_abs;
    let first_level = levels[0];
    let first_window = (w0 << first_level) as u64;

    // Seed candidates: range query on the first sub-query's level, plus a
    // linear pass over the streams' still-open MBRs (not yet indexed).
    let mut seeds: Vec<(StreamId, Time, f64)> = Vec::new();
    engine.tree(first_level).search_within(&sub_feats[0], r_abs, |rect, entry| {
        let d = rect.min_dist_point(&sub_feats[0]);
        for tf in entry.feature_times() {
            seeds.push((entry.stream, tf, d));
        }
    });
    for s in 0..engine.n_streams() as StreamId {
        if let Some(open) = engine.summary(s).open_mbr(first_level) {
            let d = open.bounds.min_dist(&sub_feats[0]);
            if d <= r_abs {
                for i in 0..open.count as u64 {
                    seeds.push((s, open.first + i * open.period, d));
                }
            }
        }
    }

    // Hierarchical radius refinement along the per-stream MBR threads.
    for (stream, tf, d0) in seeds {
        let mut acc = d0 * d0;
        let mut t_cur = tf;
        let mut prev_window = first_window;
        let mut alive = acc <= r_sq + 1e-12;
        for (feat, &j) in sub_feats.iter().zip(&levels).skip(1) {
            let Some(back) = t_cur.checked_sub(prev_window) else {
                alive = false;
                break;
            };
            t_cur = back;
            let Some(mbr) = engine.summary(stream).mbr_at(j, t_cur) else {
                alive = false;
                break;
            };
            let d = mbr.bounds.min_dist(feat);
            acc += d * d;
            if acc > r_sq + 1e-12 {
                alive = false;
                break;
            }
            prev_window = (w0 << j) as u64;
        }
        if alive {
            answer.candidates.push((stream, tf));
        }
    }

    // Post-process: verify candidates on the raw data.
    let scale = unit_sphere_scale(len, cfg.r_max);
    let mut window = Vec::new();
    for &(stream, tf) in &answer.candidates {
        if !engine.summary(stream).history().copy_window(tf, len, &mut window) {
            continue;
        }
        let d_raw: f64 =
            window.iter().zip(&q.sequence).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        if d_raw <= r_abs {
            answer.relevant += 1;
            answer.matches.push(PatternMatch { stream, end_time: tf, distance: d_raw * scale });
        }
    }
    Ok(answer)
}

/// **Algorithm 4** — answering a pattern query against a batch-built index
/// (`T_j = W`).
pub fn query_batch(engine: &Stardust, q: &PatternQuery) -> Result<PatternAnswer, QueryError> {
    check_query(q)?;
    let cfg = engine.config();
    let (w0, f) = (cfg.base_window, cfg.dwt_coeffs);
    let len = q.sequence.len();
    // Largest level j with 2^j·W + W − 1 ≤ |Q|.
    let mut level = None;
    for j in (0..cfg.levels).rev() {
        if (w0 << j) + w0 - 1 <= len {
            level = Some(j);
            break;
        }
    }
    let Some(level) = level else {
        return Err(QueryError::QueryTooShort { len, min: 2 * w0 - 1 });
    };
    let w = w0 << level;
    let r_abs = engine.raw_radius(q.radius, len);

    // Gather the disjoint pieces of every prefix into the query MBR.
    let mut qlo: Vec<f64> = Vec::new();
    let mut qhi: Vec<f64> = Vec::new();
    for i in 0..w0 {
        let mut k = 0usize;
        while i + (k + 1) * w <= len {
            let piece = &q.sequence[i + k * w..i + (k + 1) * w];
            let coeffs = haar::approx(piece, f);
            if qlo.is_empty() {
                qlo = coeffs.clone();
                qhi = coeffs;
            } else {
                for (d, &c) in qlo.iter_mut().zip(&coeffs) {
                    *d = d.min(c);
                }
                for (d, &c) in qhi.iter_mut().zip(&coeffs) {
                    *d = d.max(c);
                }
            }
            k += 1;
        }
    }
    // Multi-piece refinement: at least p disjoint pieces fit in any
    // alignment, so some piece is within R/√p.
    let p = (len - w0 + 1) / w;
    debug_assert!(p >= 1);
    let enlarge = r_abs / (p as f64).sqrt();
    let query_rect = Rect::new(
        qlo.iter().map(|v| v - enlarge).collect(),
        qhi.iter().map(|v| v + enlarge).collect(),
    );

    let mut answer = PatternAnswer::default();
    engine.tree(level).search_intersecting(&query_rect, |_, entry| {
        for tf in entry.feature_times() {
            answer.candidates.push((entry.stream, tf));
        }
    });
    for s in 0..engine.n_streams() as StreamId {
        if let Some(open) = engine.summary(s).open_mbr(level) {
            let open_rect = Rect::new(open.bounds.lo().to_vec(), open.bounds.hi().to_vec());
            if open_rect.intersects(&query_rect) {
                for i in 0..open.count as u64 {
                    answer.candidates.push((s, open.first + i * open.period));
                }
            }
        }
    }

    // Post-process: each candidate feature window could align with any
    // (prefix, piece) position of the query; verify all feasible
    // alignments and deduplicate matches by end position.
    let scale = unit_sphere_scale(len, cfg.r_max);
    let mut found: BTreeSet<(StreamId, Time)> = BTreeSet::new();
    let mut window = Vec::new();
    for &(stream, tf) in &answer.candidates {
        let now = engine.summary(stream).now().unwrap_or(0);
        let mut candidate_hit = false;
        for i in 0..w0 {
            let mut k = 0usize;
            while i + (k + 1) * w <= len {
                // Query piece [i + k·w, i + (k+1)·w) aligned with the
                // stream window [tf − w + 1, tf] puts the match end at:
                let offset = (len - (i + (k + 1) * w)) as u64;
                k += 1;
                let end_time = tf + offset;
                if end_time > now || end_time + 1 < len as u64 {
                    continue;
                }
                if found.contains(&(stream, end_time)) {
                    candidate_hit = true;
                    continue;
                }
                if !engine.summary(stream).history().copy_window(end_time, len, &mut window) {
                    continue;
                }
                let d_raw: f64 = window
                    .iter()
                    .zip(&q.sequence)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d_raw <= r_abs {
                    candidate_hit = true;
                    found.insert((stream, end_time));
                    answer.matches.push(PatternMatch { stream, end_time, distance: d_raw * scale });
                }
            }
        }
        if candidate_hit {
            answer.relevant += 1;
        }
    }
    Ok(answer)
}

/// The `k` most similar subsequence positions to `sequence` across all
/// streams — the "find the most interesting pattern" form of the finance
/// scenario (§1).
///
/// Exact: runs [`query_online`] with an expanding radius (no false
/// dismissals at any radius) until at least `k` verified matches exist or
/// the radius covers the normalized space, then returns the `k` closest.
///
/// # Errors
/// Same contract as [`query_online`] (length decomposability etc.).
pub fn nearest_online(
    engine: &Stardust,
    sequence: &[f64],
    k: usize,
) -> Result<Vec<PatternMatch>, QueryError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    // Everything is normalized into (a superset of) the unit sphere, so
    // pairwise normalized distances are bounded by ~2; 4.0 is a safe cap
    // even with an underestimated R_max.
    const RADIUS_CAP: f64 = 4.0;
    let mut radius = 1.0 / (sequence.len().max(1) as f64).sqrt();
    loop {
        let q = PatternQuery { sequence: sequence.to_vec(), radius };
        let mut answer = query_online(engine, &q)?;
        if answer.matches.len() >= k || radius >= RADIUS_CAP {
            answer
                .matches
                .sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite distances"));
            answer.matches.truncate(k);
            return Ok(answer.matches);
        }
        radius *= 2.0;
    }
}

/// Ground truth by linear scan: all (stream, end time) subsequence matches
/// within normalized distance `r`, restricted to end positions still in
/// history. Used by tests and the precision experiments.
pub fn linear_scan_matches(engine: &Stardust, q: &PatternQuery) -> Vec<PatternMatch> {
    let len = q.sequence.len();
    let r_abs = engine.raw_radius(q.radius, len);
    let scale = unit_sphere_scale(len, engine.config().r_max);
    let mut out = Vec::new();
    let mut window = Vec::new();
    for s in 0..engine.n_streams() as StreamId {
        let hist = engine.summary(s).history();
        let Some(now) = hist.latest_time() else { continue };
        let start = hist.oldest_time() + len as u64 - 1;
        for te in start..=now {
            if !hist.copy_window(te, len, &mut window) {
                continue;
            }
            let d_raw: f64 =
                window.iter().zip(&q.sequence).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            if d_raw <= r_abs {
                out.push(PatternMatch { stream: s, end_time: te, distance: d_raw * scale });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random-walk streams (the paper's synthetic model, §6).
    fn feed(engine: &mut Stardust, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let m = engine.n_streams();
        let mut seeds: Vec<u64> = (0..m as u64).map(|s| seed ^ (s * 7919)).collect();
        let mut vals: Vec<f64> = seeds.iter_mut().map(|s| rng(s) * 100.0).collect();
        let mut data = vec![Vec::with_capacity(n); m];
        for _ in 0..n {
            for s in 0..m {
                vals[s] += rng(&mut seeds[s]) - 0.5;
                vals[s] = vals[s].clamp(0.0, 200.0);
                engine.append(s as StreamId, vals[s]);
                data[s].push(vals[s]);
            }
        }
        data
    }

    fn online_engine() -> Stardust {
        let mut cfg = Config::batch(8, 4, 4, 200.0).with_history(256);
        cfg.update = crate::config::UpdatePolicy::Online;
        cfg.box_capacity = 4;
        Stardust::new(cfg, 3)
    }

    fn batch_engine() -> Stardust {
        let cfg = Config::batch(8, 4, 4, 200.0).with_history(256);
        Stardust::new(cfg, 3)
    }

    /// A self-query (a subsequence of a stream) must always be found.
    #[test]
    fn online_finds_planted_subsequence() {
        let mut e = online_engine();
        let data = feed(&mut e, 400, 17);
        // Query = stream 1's subsequence of length 24 = 8 + 16 ending at 399.
        let q = PatternQuery { sequence: data[1][376..400].to_vec(), radius: 0.01 };
        let ans = query_online(&e, &q).expect("valid query");
        assert!(
            ans.matches.iter().any(|m| m.stream == 1 && m.end_time == 399),
            "planted match missing: {:?}",
            ans.matches
        );
    }

    /// Online answers exactly the linear-scan matches (no false
    /// dismissals; verification removes false alarms) for end positions
    /// where all sub-window features exist.
    #[test]
    fn online_matches_equal_ground_truth() {
        let mut e = online_engine();
        let _ = feed(&mut e, 500, 5);
        for &(len, r) in &[(24usize, 0.02), (40, 0.05), (8, 0.03)] {
            let src = e.summary(0).history().window(499, len).unwrap();
            let q = PatternQuery { sequence: src, radius: r };
            let ans = query_online(&e, &q).expect("valid");
            let truth = linear_scan_matches(&e, &q);
            // Ground truth restricted to positions with full feature
            // coverage (warm-up excluded).
            let mut want: Vec<(StreamId, Time)> = truth
                .iter()
                .filter(|m| m.end_time + 1 >= len as u64)
                .map(|m| (m.stream, m.end_time))
                .collect();
            want.sort_unstable();
            let mut got: Vec<(StreamId, Time)> =
                ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            got.sort_unstable();
            assert_eq!(got, want, "len={len} r={r}");
        }
    }

    /// Batch finds every ground-truth match (no false dismissals).
    #[test]
    fn batch_covers_ground_truth() {
        let mut e = batch_engine();
        let _ = feed(&mut e, 500, 23);
        for &(len, r) in &[(24usize, 0.03), (40, 0.06)] {
            let src = e.summary(2).history().window(480, len).unwrap();
            let q = PatternQuery { sequence: src, radius: r };
            let ans = query_batch(&e, &q).expect("valid");
            let truth = linear_scan_matches(&e, &q);
            let got: BTreeSet<(StreamId, Time)> =
                ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            for m in &truth {
                assert!(
                    got.contains(&(m.stream, m.end_time)),
                    "len={len} r={r}: ground-truth match {m:?} dismissed"
                );
            }
            // And everything reported is a true match (verified).
            assert_eq!(got.len(), truth.len(), "len={len} r={r}");
        }
    }

    #[test]
    fn precision_is_fraction_of_candidates() {
        let mut e = batch_engine();
        let _ = feed(&mut e, 400, 99);
        let src = e.summary(0).history().window(399, 24).unwrap();
        let q = PatternQuery { sequence: src, radius: 0.05 };
        let ans = query_batch(&e, &q).expect("valid");
        assert!(ans.precision() >= 0.0 && ans.precision() <= 1.0);
        assert!(ans.relevant <= ans.candidates.len());
        // The planted source guarantees at least one relevant candidate.
        assert!(ans.relevant >= 1);
    }

    #[test]
    fn query_validation_errors() {
        let e = online_engine();
        let empty = PatternQuery { sequence: vec![], radius: 0.1 };
        assert_eq!(query_online(&e, &empty), Err(QueryError::EmptyQuery));
        let bad_len = PatternQuery { sequence: vec![0.0; 25], radius: 0.1 };
        assert!(matches!(
            query_online(&e, &bad_len),
            Err(QueryError::LengthNotDecomposable { .. })
        ));
        let bad_r = PatternQuery { sequence: vec![0.0; 24], radius: -1.0 };
        assert_eq!(query_online(&e, &bad_r), Err(QueryError::InvalidRadius));
        let short = PatternQuery { sequence: vec![0.0; 8], radius: 0.1 };
        assert!(matches!(query_batch(&e, &short), Err(QueryError::QueryTooShort { .. })));
    }

    #[test]
    fn nearest_matches_bruteforce_top_k() {
        let mut e = online_engine();
        let data = feed(&mut e, 400, 71);
        let query = data[2][360..384].to_vec();
        for k in [1usize, 5, 20] {
            let got = nearest_online(&e, &query, k).expect("valid");
            assert_eq!(got.len(), k.min(got.len()));
            // Brute-force top-k over all available positions.
            let q = PatternQuery { sequence: query.clone(), radius: 4.0 };
            let mut truth = linear_scan_matches(&e, &q);
            truth.retain(|m| m.end_time + 1 >= 24);
            truth.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap());
            for (g, t) in got.iter().zip(&truth) {
                assert!((g.distance - t.distance).abs() < 1e-9, "k={k}: got {g:?} want {t:?}");
            }
            // The self-occurrence is always the nearest.
            assert_eq!(got[0].stream, 2);
            assert_eq!(got[0].end_time, 383);
            assert!(got[0].distance < 1e-9);
        }
    }

    #[test]
    fn nearest_with_zero_k() {
        let mut e = online_engine();
        let _ = feed(&mut e, 200, 8);
        let q: Vec<f64> = e.summary(0).history().window(199, 24).unwrap();
        assert!(nearest_online(&e, &q, 0).expect("valid").is_empty());
    }

    #[test]
    fn zero_radius_finds_exact_occurrence_only() {
        let mut e = online_engine();
        let data = feed(&mut e, 300, 1234);
        let q = PatternQuery { sequence: data[0][260..284].to_vec(), radius: 0.0 };
        let ans = query_online(&e, &q).expect("valid");
        assert!(ans.matches.iter().any(|m| m.stream == 0 && m.end_time == 283));
        for m in &ans.matches {
            assert!(m.distance <= 1e-9);
        }
    }
}
