//! Continuous trend monitoring — the standing-query form of §2.3.
//!
//! Where [`crate::query::pattern`] answers *one-time* queries ("find all
//! past occurrences of Q"), the paper's pattern-monitoring model is
//! continuous: "a pattern database is continuously monitored over dynamic
//! data streams: identify all temperature sensors […] that **currently**
//! exhibit an interesting trend". This module inverts the index: the
//! registered patterns' features live in per-length R\*-trees, and each
//! arriving value probes them with the stream's current multi-resolution
//! summary — the same binary decomposition and hierarchical radius
//! refinement as Algorithm 3, with the roles of query and data swapped.

use std::collections::BTreeMap;

use stardust_dsp::haar;
use stardust_index::{Params, RStarTree};

use crate::config::Config;
use crate::error::QueryError;
use crate::normalize::unit_sphere_scale;
use crate::query::aggregate::decompose;
use crate::snapshot::{Reader, SnapshotError, Writer};
use crate::stream::{StreamId, Time};
use crate::summarizer::StreamSummary;
use crate::transform::TransformKind;

/// Identifier assigned to a registered pattern.
pub type PatternId = u32;

/// A stream currently matching a registered pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendMatch {
    /// The stream whose arrival completed the match.
    pub stream: StreamId,
    /// The matched pattern.
    pub pattern: PatternId,
    /// Time of the last value of the matching window.
    pub time: Time,
    /// Normalized distance (≤ the pattern's radius).
    pub distance: f64,
}

struct Registered {
    id: PatternId,
    /// Raw sequence, for verification.
    sequence: Vec<f64>,
    /// Raw-space radius budget `r·√L·R_max`.
    r_abs: f64,
    /// Sub-window features, most recent first (levels ascending).
    sub_feats: Vec<Vec<f64>>,
}

/// Patterns of one length share a decomposition and a feature index over
/// their first (most recent) sub-window feature.
struct LengthGroup {
    levels: Vec<usize>,
    tree: RStarTree<usize>, // payload: index into `patterns`
    max_r_abs: f64,
}

/// Running counters for trend monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrendStats {
    /// Candidates that survived index filtering + refinement (each cost a
    /// raw verification).
    pub candidates: u64,
    /// Verified matches reported.
    pub matches: u64,
}

impl TrendStats {
    /// Verified matches over candidates (1.0 when nothing was retrieved).
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.matches as f64 / self.candidates as f64
        }
    }
}

/// Continuous pattern monitoring over `M` streams against a registered
/// pattern database.
///
/// ```
/// use stardust_core::config::{Config, UpdatePolicy};
/// use stardust_core::query::trend::TrendMonitor;
/// use stardust_core::transform::TransformKind;
///
/// let mut cfg = Config::batch(8, 2, 4, 100.0).with_history(32);
/// cfg.update = UpdatePolicy::Online;
/// let mut monitor = TrendMonitor::new(cfg, 1);
/// let ramp: Vec<f64> = (0..16).map(|i| 10.0 + i as f64).collect();
/// let id = monitor.register(ramp.clone(), 0.01).unwrap();
///
/// // Quiet stream, then the trend appears.
/// for _ in 0..20 {
///     assert!(monitor.append(0, 12.0).is_empty());
/// }
/// let mut hits = Vec::new();
/// for &v in &ramp {
///     hits.extend(monitor.append(0, v));
/// }
/// assert!(hits.iter().any(|m| m.pattern == id));
/// ```
pub struct TrendMonitor {
    config: Config,
    summaries: Vec<StreamSummary>,
    patterns: Vec<Registered>,
    groups: BTreeMap<usize, LengthGroup>,
    stats: TrendStats,
    scratch: Vec<f64>,
    /// Detached (free) unless attached; never serialized.
    telemetry: crate::telemetry::ClassTelemetry,
    /// R\*-tree counters drained from the per-length trees.
    index_telemetry: crate::telemetry::IndexTelemetry,
}

// Compact by hand: summaries and length groups carry full index state.
impl std::fmt::Debug for TrendMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrendMonitor")
            .field("n_streams", &self.summaries.len())
            .field("n_patterns", &self.patterns.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl TrendMonitor {
    /// A monitor over `n_streams` streams with the given summarizer
    /// configuration (must be DWT-based; typically the online policy so
    /// every arrival is checked).
    ///
    /// # Panics
    /// Panics on an invalid or non-DWT configuration.
    pub fn new(config: Config, n_streams: usize) -> Self {
        assert!(n_streams >= 1, "need at least one stream");
        assert_eq!(config.transform, TransformKind::Dwt, "trend monitoring is DWT-based");
        config.validate();
        let summaries = (0..n_streams).map(|_| StreamSummary::new(config.clone())).collect();
        TrendMonitor {
            config,
            summaries,
            patterns: Vec::new(),
            groups: BTreeMap::new(),
            stats: TrendStats::default(),
            scratch: Vec::new(),
            telemetry: crate::telemetry::ClassTelemetry::default(),
            index_telemetry: crate::telemetry::IndexTelemetry::default(),
        }
    }

    /// Attaches per-class, summarizer, and index telemetry from
    /// `registry`. Runtime state only — re-attach after
    /// [`Self::restore`].
    pub fn attach_telemetry(&mut self, registry: &stardust_telemetry::Registry) {
        self.telemetry = crate::telemetry::ClassTelemetry::new(registry, "trend");
        self.index_telemetry = crate::telemetry::IndexTelemetry::new(registry);
        let summarizer = crate::telemetry::SummarizerTelemetry::new(registry);
        for s in &mut self.summaries {
            s.set_telemetry(summarizer.clone());
        }
        // Fold in whatever the trees accumulated before attachment
        // (pattern-registration inserts).
        for group in self.groups.values() {
            self.index_telemetry.record(group.tree.reset_counters());
        }
    }

    /// Registers a pattern; returns its id. The pattern length must be a
    /// positive multiple of `W` decomposable over the configured levels.
    pub fn register(&mut self, sequence: Vec<f64>, radius: f64) -> Result<PatternId, QueryError> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(QueryError::InvalidRadius);
        }
        let r_abs = radius * (sequence.len() as f64).sqrt() * self.config.r_max;
        self.register_with_r_abs(sequence, r_abs)
    }

    /// Registers a pattern by its precomputed raw-space radius budget
    /// `r_abs = r·√L·R_max`. [`Self::register`] and snapshot restoration
    /// both funnel through here, so a restored pattern carries the exact
    /// same budget (no radius round-trip through division).
    fn register_with_r_abs(
        &mut self,
        sequence: Vec<f64>,
        r_abs: f64,
    ) -> Result<PatternId, QueryError> {
        if sequence.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        if !r_abs.is_finite() || r_abs < 0.0 {
            return Err(QueryError::InvalidRadius);
        }
        let len = sequence.len();
        let w0 = self.config.base_window;
        let f = self.config.dwt_coeffs;
        let levels = decompose(len, w0, self.config.levels - 1)?;
        // Sub-window features, most recent (tail of the pattern) first.
        let mut sub_feats = Vec::with_capacity(levels.len());
        let mut end = len;
        for &j in &levels {
            let w = w0 << j;
            sub_feats.push(haar::approx(&sequence[end - w..end], f));
            end -= w;
        }
        let id = self.patterns.len() as PatternId;
        let pattern_index = self.patterns.len();
        self.patterns.push(Registered { id, sequence, r_abs, sub_feats });
        let group = self.groups.entry(len).or_insert_with(|| LengthGroup {
            levels,
            tree: RStarTree::with_params(f, Params::default()),
            max_r_abs: 0.0,
        });
        group.max_r_abs = group.max_r_abs.max(r_abs);
        let first = &self.patterns[pattern_index].sub_feats[0];
        group.tree.insert(stardust_index::Rect::point(first), pattern_index);
        Ok(id)
    }

    /// Number of registered patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Cumulative candidate/match counters.
    pub fn stats(&self) -> TrendStats {
        self.stats
    }

    /// The summary of one stream.
    pub fn summary(&self, stream: StreamId) -> &StreamSummary {
        &self.summaries[stream as usize]
    }

    /// Serializes the monitor: every stream summary, the registered
    /// patterns (raw sequence plus exact radius budget), and the
    /// counters. The per-length R\*-trees are derived state: they are
    /// rebuilt by [`Self::restore`] re-registering the patterns in id
    /// order, which reproduces the identical insertion sequence and
    /// therefore the identical index structure.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize(self.summaries.len());
        for s in &self.summaries {
            w.blob(&s.snapshot());
        }
        w.u64(self.stats.candidates);
        w.u64(self.stats.matches);
        w.usize(self.patterns.len());
        for p in &self.patterns {
            w.f64_slice(&p.sequence);
            w.f64(p.r_abs);
        }
        w.finish()
    }

    /// Rebuilds a monitor from [`Self::snapshot`] bytes; continuation is
    /// bit-identical to the uninterrupted original.
    ///
    /// # Errors
    /// [`SnapshotError`] on a truncated, corrupt, or inconsistent buffer.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes)?;
        let n_streams = r.count(16)?;
        if n_streams == 0 {
            return Err(SnapshotError::Corrupt("trend snapshot with zero streams"));
        }
        let mut summaries = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            summaries.push(StreamSummary::restore(r.blob()?)?);
        }
        let config = summaries[0].config().clone();
        if config.transform != TransformKind::Dwt {
            return Err(SnapshotError::Corrupt("trend snapshot without DWT transform"));
        }
        if summaries.iter().any(|s| *s.config() != config) {
            return Err(SnapshotError::Corrupt("trend summaries disagree on config"));
        }
        let stats = TrendStats { candidates: r.u64()?, matches: r.u64()? };
        let n_patterns = r.count(16)?;
        let mut monitor = TrendMonitor {
            config,
            summaries,
            patterns: Vec::with_capacity(n_patterns),
            groups: BTreeMap::new(),
            stats,
            scratch: Vec::new(),
            telemetry: crate::telemetry::ClassTelemetry::default(),
            index_telemetry: crate::telemetry::IndexTelemetry::default(),
        };
        for _ in 0..n_patterns {
            let sequence = r.f64_vec()?;
            let r_abs = r.f64()?;
            monitor
                .register_with_r_abs(sequence, r_abs)
                .map_err(|_| SnapshotError::Corrupt("unregistrable trend pattern"))?;
        }
        r.expect_end()?;
        Ok(monitor)
    }

    /// Appends one value to one stream; returns the patterns the stream's
    /// current windows now match.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) -> Vec<TrendMatch> {
        let span = self.telemetry.latency_span();
        let s = stream as usize;
        self.summaries[s].push_quiet(value);
        let t = self.summaries[s].now().expect("just pushed");
        let w0 = self.config.base_window as u64;
        let mut out = Vec::new();
        for (&len, group) in &self.groups {
            if t + 1 < len as u64 {
                continue;
            }
            let summary = &self.summaries[s];
            // The stream's feature box over its most recent sub-window.
            let first_level = group.levels[0];
            let Some(mbr) = summary.mbr_at(first_level, t) else { continue };
            self.telemetry.checks.inc();
            // Candidate patterns: those whose first sub-feature is within
            // the group's largest radius of the stream's feature box.
            let mut cands: Vec<usize> = Vec::new();
            let qrect = stardust_index::Rect::new(
                mbr.bounds.lo().iter().map(|v| v - group.max_r_abs).collect(),
                mbr.bounds.hi().iter().map(|v| v + group.max_r_abs).collect(),
            );
            group.tree.search_intersecting(&qrect, |_, &idx| cands.push(idx));

            for idx in cands {
                let pat = &self.patterns[idx];
                // Hierarchical radius refinement along the stream's own
                // MBR thread (roles of Algorithm 3 swapped).
                let r_sq = pat.r_abs * pat.r_abs;
                let mut acc = {
                    let d = mbr.bounds.min_dist(&pat.sub_feats[0]);
                    d * d
                };
                if acc > r_sq + 1e-12 {
                    continue;
                }
                let mut t_cur = t;
                let mut prev_window = w0 << group.levels[0] as u64;
                let mut alive = true;
                for (feat, &j) in pat.sub_feats.iter().zip(&group.levels).skip(1) {
                    let Some(back) = t_cur.checked_sub(prev_window) else {
                        alive = false;
                        break;
                    };
                    t_cur = back;
                    let Some(m) = summary.mbr_at(j, t_cur) else {
                        alive = false;
                        break;
                    };
                    let d = m.bounds.min_dist(feat);
                    acc += d * d;
                    if acc > r_sq + 1e-12 {
                        alive = false;
                        break;
                    }
                    prev_window = w0 << j;
                }
                if !alive {
                    continue;
                }
                // Verify on the raw window.
                self.stats.candidates += 1;
                self.telemetry.candidates.inc();
                let mut buf = std::mem::take(&mut self.scratch);
                let ok = summary.history().copy_window(t, len, &mut buf);
                debug_assert!(ok, "warm window is in history");
                let d_raw: f64 = buf
                    .iter()
                    .zip(&pat.sequence)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                self.scratch = buf;
                if d_raw <= pat.r_abs {
                    self.stats.matches += 1;
                    self.telemetry.confirmed.inc();
                    out.push(TrendMatch {
                        stream,
                        pattern: pat.id,
                        time: t,
                        distance: d_raw * unit_sphere_scale(len, self.config.r_max),
                    });
                }
            }
        }
        if self.index_telemetry.node_visits.is_enabled() {
            for group in self.groups.values() {
                self.index_telemetry.record(group.tree.reset_counters());
            }
        }
        drop(span);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdatePolicy;

    fn monitor() -> TrendMonitor {
        let mut cfg = Config::batch(8, 3, 4, 100.0).with_history(64);
        cfg.update = UpdatePolicy::Online;
        cfg.box_capacity = 4;
        TrendMonitor::new(cfg, 2)
    }

    fn ramp(len: usize, slope: f64) -> Vec<f64> {
        (0..len).map(|i| 10.0 + slope * i as f64).collect()
    }

    #[test]
    fn registration_validates() {
        let mut m = monitor();
        assert!(m.register(vec![], 0.1).is_err());
        assert!(m.register(vec![0.0; 24], -1.0).is_err());
        assert!(matches!(
            m.register(vec![0.0; 25], 0.1),
            Err(QueryError::LengthNotDecomposable { .. })
        ));
        assert!(m.register(ramp(24, 0.5), 0.1).is_ok());
        assert_eq!(m.n_patterns(), 1);
    }

    #[test]
    fn detects_trend_as_it_appears() {
        let mut m = monitor();
        let pat = ramp(24, 0.5);
        let id = m.register(pat.clone(), 0.02).expect("valid pattern");
        // Stream 1 wanders flat, then follows the ramp exactly.
        let mut hits = Vec::new();
        for i in 0..60 {
            let v = 10.0 + ((i * 13) % 7) as f64 * 0.2;
            hits.extend(m.append(1, v));
        }
        assert!(hits.is_empty(), "no trend yet: {hits:?}");
        for &v in &pat {
            hits.extend(m.append(1, v));
        }
        assert!(
            hits.iter().any(|h| h.pattern == id && h.stream == 1),
            "trend not flagged: {hits:?}"
        );
        // The final match fires exactly when the window completes.
        let last = hits.last().expect("matched");
        assert_eq!(last.time, 60 + 24 - 1);
        assert!(last.distance <= 0.02);
    }

    #[test]
    fn multiple_patterns_and_lengths() {
        let mut m = monitor();
        let up = m.register(ramp(16, 1.0), 0.05).unwrap();
        let down = m.register(ramp(24, -0.8).iter().map(|v| v + 30.0).collect(), 0.05).unwrap();
        assert_ne!(up, down);
        // Feed the down-trend into stream 0.
        let mut matched = std::collections::BTreeSet::new();
        for i in 0..24 {
            let v = 40.0 - 0.8 * i as f64;
            for h in m.append(0, v) {
                matched.insert(h.pattern);
            }
        }
        assert!(matched.contains(&down), "down trend missed: {matched:?}");
        assert!(!matched.contains(&up), "up trend spuriously matched");
    }

    #[test]
    fn matches_agree_with_bruteforce_over_time() {
        let mut m = monitor();
        let pat = ramp(16, 0.7);
        m.register(pat.clone(), 0.03).unwrap();
        let r_abs = 0.03 * 16f64.sqrt() * 100.0;
        let mut series = Vec::new();
        let mut expected = 0usize;
        let mut reported = 0usize;
        let mut seed = 5u64;
        for i in 0..400 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = if i % 37 < 16 {
                // periodically replay the ramp with small noise
                pat[i % 37] + ((seed >> 33) as f64 / 2f64.powi(31) - 0.5) * 0.3
            } else {
                12.0 + ((seed >> 33) % 8) as f64
            };
            series.push(v);
            reported += m.append(0, v).len();
            if series.len() >= 16 {
                let win = &series[series.len() - 16..];
                let d: f64 =
                    win.iter().zip(&pat).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                if d <= r_abs {
                    expected += 1;
                }
            }
        }
        assert_eq!(reported, expected, "continuous matches must equal brute force");
        assert!(expected > 0, "workload should contain matches");
    }

    #[test]
    fn precision_counters() {
        let mut m = monitor();
        m.register(ramp(16, 0.7), 0.03).unwrap();
        for i in 0..200 {
            m.append(0, 10.0 + (i % 16) as f64 * 0.7);
        }
        let st = m.stats();
        assert!(st.matches <= st.candidates);
        assert!(st.precision() > 0.0 && st.precision() <= 1.0);
    }
}
