//! Query-level errors.

/// Why a query could not be posed against the engine. (Data not yet
/// available — warm-up — is reported as an empty/`None` answer, not an
/// error.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query sequence was empty.
    EmptyQuery,
    /// The window/query length is not a multiple of the base window, or its
    /// binary decomposition needs a resolution level the index does not
    /// maintain.
    LengthNotDecomposable {
        /// Offending length.
        len: usize,
        /// Base window `W`.
        base: usize,
        /// Highest maintained level `J`.
        max_level: usize,
    },
    /// The query is shorter than the smallest length the batch algorithm
    /// can serve (`2W − 1`).
    QueryTooShort {
        /// Offending length.
        len: usize,
        /// Minimum serviceable length.
        min: usize,
    },
    /// The radius/threshold was negative or not finite.
    InvalidRadius,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query sequence is empty"),
            QueryError::LengthNotDecomposable { len, base, max_level } => write!(
                f,
                "length {len} cannot be decomposed over base window {base} with levels 0..={max_level}"
            ),
            QueryError::QueryTooShort { len, min } => {
                write!(f, "query length {len} below the minimum of {min}")
            }
            QueryError::InvalidRadius => write!(f, "radius must be finite and nonnegative"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = QueryError::LengthNotDecomposable { len: 100, base: 8, max_level: 2 };
        assert!(e.to_string().contains("100"));
        assert!(QueryError::EmptyQuery.to_string().contains("empty"));
    }
}
