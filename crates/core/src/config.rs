//! Configuration of the multi-resolution summarizer.

use crate::transform::TransformKind;

/// Update-rate policy: how often a new feature is computed at level `j`
/// (the `T_j` of §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// `T_j = 1` at every level — the **online algorithm**. Box capacity
    /// `c` may be larger than one; used for aggregate monitoring.
    Online,
    /// `T_j = W` at every level — the **batch algorithm** of the paper
    /// (used with `c = 1` for pattern and correlation queries).
    Batch,
    /// `T_j = 2^j` — the update schedule of the authors' earlier SWAT
    /// system, kept for the ablation benchmarks.
    Swat,
}

impl UpdatePolicy {
    /// The update period `T_j` at level `j` for base window `w`.
    pub fn period(self, level: usize, base_window: usize) -> u64 {
        match self {
            UpdatePolicy::Online => 1,
            UpdatePolicy::Batch => base_window as u64,
            UpdatePolicy::Swat => 1u64 << level,
        }
    }
}

/// How features above level 0 are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeMode {
    /// Stardust's incremental scheme (Algorithm 1): level `j` from the
    /// level `j−1` MBRs, Θ(f) per level per item — exact for `c = 1`,
    /// approximate otherwise.
    #[default]
    Incremental,
    /// Direct computation from the raw window at every level — Θ(W·2^j)
    /// per level per item, always exact. This is how the MR-Index baseline
    /// (Kahveci & Singh) behaves in a streaming setting (§3), and the
    /// ablation against which the incremental scheme is measured.
    Direct,
}

/// Configuration of a Stardust summarizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Sliding window size `W` at the lowest resolution.
    pub base_window: usize,
    /// Number of resolution levels (`J + 1`); level `j` summarizes windows
    /// of `W · 2^j`.
    pub levels: usize,
    /// Box capacity `c`: features per MBR. `c = 1` stores features exactly.
    pub box_capacity: usize,
    /// History of interest `N`: raw values and features older than `N`
    /// time units are discarded.
    pub history: usize,
    /// Transform applied to each window.
    pub transform: TransformKind,
    /// Feature dimensionality `f` for the DWT transform (ignored by the
    /// aggregate transforms, which have fixed dimensionality).
    pub dwt_coeffs: usize,
    /// Upper bound `R_max` of the value range, used by the unit-sphere
    /// normalization (Eq. 2).
    pub r_max: f64,
    /// Update-rate policy.
    pub update: UpdatePolicy,
    /// How features above level 0 are computed.
    pub compute: ComputeMode,
}

impl Config {
    /// A configuration for the **online algorithm** (aggregate monitoring):
    /// `T_j = 1` with the given box capacity.
    pub fn online(
        transform: TransformKind,
        base_window: usize,
        levels: usize,
        box_capacity: usize,
    ) -> Self {
        Config {
            base_window,
            levels,
            box_capacity,
            history: base_window << (levels.saturating_sub(1)),
            transform,
            dwt_coeffs: 2,
            r_max: 1.0,
            update: UpdatePolicy::Online,
            compute: ComputeMode::default(),
        }
    }

    /// A configuration for the **batch algorithm** (pattern / correlation
    /// queries): `T_j = W`, `c = 1`, DWT features of dimensionality `f`.
    pub fn batch(base_window: usize, levels: usize, f: usize, r_max: f64) -> Self {
        Config {
            base_window,
            levels,
            box_capacity: 1,
            history: base_window << (levels.saturating_sub(1)),
            transform: TransformKind::Dwt,
            dwt_coeffs: f,
            r_max,
            update: UpdatePolicy::Batch,
            compute: ComputeMode::default(),
        }
    }

    /// Overrides the history of interest `N`.
    pub fn with_history(mut self, n: usize) -> Self {
        self.history = n;
        self
    }

    /// The sliding window size `W · 2^j` at level `j`.
    pub fn window_at(&self, level: usize) -> usize {
        self.base_window << level
    }

    /// The largest window size `W · 2^J`.
    pub fn max_window(&self) -> usize {
        self.window_at(self.levels - 1)
    }

    /// Validates internal consistency; called by the summarizer
    /// constructor.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Non-panicking validation (used when restoring snapshots from
    /// untrusted bytes).
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn check(&self) -> Result<(), String> {
        if self.base_window < 1 {
            return Err("base window W must be at least 1".into());
        }
        if self.levels < 1 {
            return Err("need at least one resolution level".into());
        }
        if self.levels > 40 {
            return Err("too many levels".into());
        }
        if self.box_capacity < 1 {
            return Err("box capacity c must be at least 1".into());
        }
        if self.history < self.max_window() {
            return Err("history N must cover the largest window".into());
        }
        if self.r_max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("R_max must be positive".into());
        }
        if self.transform == TransformKind::Dwt {
            if !self.base_window.is_power_of_two() {
                return Err(format!(
                    "DWT requires a power-of-two base window, got {}",
                    self.base_window
                ));
            }
            if !(self.dwt_coeffs.is_power_of_two() && self.dwt_coeffs <= self.base_window) {
                return Err(
                    "DWT coefficient count f must be a power of two no larger than W".into()
                );
            }
        }
        // Feature alignment: computing level j from level j-1 requires the
        // half offset w_{j-1} and the period T_j to both be multiples of
        // T_{j-1} (§4, Algorithm 1).
        for j in 1..self.levels {
            let tj = self.update.period(j, self.base_window);
            let tprev = self.update.period(j - 1, self.base_window);
            if !tj.is_multiple_of(tprev) {
                return Err(format!("period at level {j} not a multiple of level {}", j - 1));
            }
            if !(self.window_at(j - 1) as u64).is_multiple_of(tprev) {
                return Err(format!("half-window at level {} not aligned with its period", j - 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_config_is_valid() {
        Config::online(TransformKind::Sum, 20, 6, 25).validate();
    }

    #[test]
    fn batch_config_is_valid() {
        Config::batch(64, 5, 2, 200.0).validate();
    }

    #[test]
    fn swat_periods_double() {
        let p = UpdatePolicy::Swat;
        assert_eq!(p.period(0, 16), 1);
        assert_eq!(p.period(3, 16), 8);
    }

    #[test]
    fn window_sizes_double_per_level() {
        let cfg = Config::online(TransformKind::Sum, 20, 4, 1);
        assert_eq!(cfg.window_at(0), 20);
        assert_eq!(cfg.window_at(3), 160);
        assert_eq!(cfg.max_window(), 160);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn dwt_requires_pow2_window() {
        let mut cfg = Config::batch(64, 3, 2, 1.0);
        cfg.base_window = 20;
        cfg.history = 20 << 2;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "history N must cover")]
    fn short_history_rejected() {
        Config::online(TransformKind::Sum, 16, 4, 1).with_history(10).validate();
    }

    #[test]
    fn swat_policy_is_aligned() {
        let mut cfg = Config::online(TransformKind::Sum, 16, 5, 1);
        cfg.update = UpdatePolicy::Swat;
        cfg.validate();
    }
}
