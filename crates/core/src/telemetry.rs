//! Instrumentation bundles wiring [`stardust_telemetry`] handles into
//! the core engines.
//!
//! Every bundle is a set of pre-registered metric handles; the default
//! value of each bundle is fully detached (every operation a single
//! branch), so monitors hold them unconditionally and attaching
//! telemetry is just swapping the bundle. Bundles are **runtime state,
//! not summary state**: snapshots never serialize them, and a restored
//! monitor comes back detached until the owner re-attaches (the sharded
//! runtime does this after every crash recovery).
//!
//! Metric names follow Prometheus conventions
//! (`stardust_<subsystem>_<what>_<unit|total>`); the full catalogue
//! with units lives in DESIGN.md §Observability.

use stardust_index::TreeCounters;
use stardust_telemetry::{Counter, Histogram, Registry};

/// Summarizer (Algorithm 1) counters: raw appends and the MBR
/// lifecycle.
#[derive(Clone, Debug, Default)]
pub struct SummarizerTelemetry {
    /// `stardust_summarizer_appends_total` — raw values pushed.
    pub appends: Counter,
    /// `stardust_summarizer_mbrs_sealed_total` — MBRs sealed at any level.
    pub sealed: Counter,
    /// `stardust_summarizer_mbrs_retired_total` — MBRs retired at any level.
    pub retired: Counter,
}

impl SummarizerTelemetry {
    /// Registers (or re-resolves) the summarizer series in `registry`.
    pub fn new(registry: &Registry) -> Self {
        SummarizerTelemetry {
            appends: registry.counter(
                "stardust_summarizer_appends_total",
                "Raw stream values pushed into summarizers",
            ),
            sealed: registry.counter(
                "stardust_summarizer_mbrs_sealed_total",
                "Feature MBRs sealed at box capacity, all levels",
            ),
            retired: registry.counter(
                "stardust_summarizer_mbrs_retired_total",
                "Feature MBRs retired past the history horizon, all levels",
            ),
        }
    }
}

/// R\*-tree structural counters, aggregated across every tree a monitor
/// owns (one per resolution level / pattern length group).
#[derive(Clone, Debug, Default)]
pub struct IndexTelemetry {
    /// `stardust_index_inserts_total`.
    pub inserts: Counter,
    /// `stardust_index_removes_total`.
    pub removes: Counter,
    /// `stardust_index_splits_total`.
    pub splits: Counter,
    /// `stardust_index_reinserted_entries_total`.
    pub reinserted_entries: Counter,
    /// `stardust_index_node_visits_total`.
    pub node_visits: Counter,
}

impl IndexTelemetry {
    /// Registers (or re-resolves) the index series in `registry`.
    pub fn new(registry: &Registry) -> Self {
        IndexTelemetry {
            inserts: registry
                .counter("stardust_index_inserts_total", "R*-tree data-item insertions"),
            removes: registry.counter("stardust_index_removes_total", "R*-tree data-item removals"),
            splits: registry.counter("stardust_index_splits_total", "R*-tree node splits"),
            reinserted_entries: registry.counter(
                "stardust_index_reinserted_entries_total",
                "Entries moved by forced reinsertion or deletion condensation",
            ),
            node_visits: registry.counter(
                "stardust_index_node_visits_total",
                "R*-tree nodes visited by range/intersection searches",
            ),
        }
    }

    /// Folds a [`TreeCounters`] delta (typically from
    /// [`stardust_index::RStarTree::reset_counters`]) into the series.
    pub fn record(&self, delta: TreeCounters) {
        self.inserts.add(delta.inserts);
        self.removes.add(delta.removes);
        self.splits.add(delta.splits);
        self.reinserted_entries.add(delta.reinserted_entries);
        self.node_visits.add(delta.node_visits);
    }
}

/// Per-query-class counters and latency: shared shape for the
/// aggregate, trend (pattern), and correlation engines.
///
/// `candidates` vs `confirmed` is the paper's §6.1 accounting: a
/// candidate is an index/bound hit that forced a raw-data verification,
/// a confirmed result survived it. `confirmed/candidates` is precision;
/// `1 − precision` is the observed false-alarm rate that Eq. 4–7 model
/// analytically.
#[derive(Clone, Debug, Default)]
pub struct ClassTelemetry {
    /// `stardust_<class>_checks_total` — evaluations performed (warm
    /// windows inspected, features probed).
    pub checks: Counter,
    /// `stardust_<class>_candidates_total` — bound/index crossings that
    /// required verification.
    pub candidates: Counter,
    /// `stardust_<class>_confirmed_total` — verifications that held.
    pub confirmed: Counter,
    /// `stardust_<class>_latency_ns` — per-append processing latency,
    /// systematically sampled (see [`ClassTelemetry::latency_span`]).
    pub latency: Histogram,
    /// Rolling append count driving the latency sampling schedule.
    tick: std::cell::Cell<u32>,
}

impl ClassTelemetry {
    /// One append in [`Self::LATENCY_SAMPLE_EVERY`] carries a latency
    /// span. Reading the clock twice per span costs more than every
    /// counter in an append combined, so timing each one would blow the
    /// ≤5% ingest-overhead budget; systematic 1-in-64 sampling keeps
    /// the quantile estimates while amortizing the clock reads to under
    /// a nanosecond per append.
    pub const LATENCY_SAMPLE_EVERY: u32 = 64;

    /// A span for one append: inert on detached handles and on
    /// unsampled appends, timed on every
    /// [`Self::LATENCY_SAMPLE_EVERY`]th.
    #[inline]
    pub fn latency_span(&self) -> stardust_telemetry::Span<'_> {
        let t = self.tick.get().wrapping_add(1);
        self.tick.set(t);
        self.latency.span_if(t.is_multiple_of(Self::LATENCY_SAMPLE_EVERY))
    }

    /// Registers (or re-resolves) the series for `class` (one of
    /// `aggregate`, `trend`, `correlation`, `pattern`).
    pub fn new(registry: &Registry, class: &str) -> Self {
        ClassTelemetry {
            checks: registry.counter(
                &format!("stardust_{class}_checks_total"),
                "Evaluations performed by this query class",
            ),
            candidates: registry.counter(
                &format!("stardust_{class}_candidates_total"),
                "Bound or index crossings that required raw-data verification",
            ),
            confirmed: registry.counter(
                &format!("stardust_{class}_confirmed_total"),
                "Verifications confirmed on raw data",
            ),
            latency: registry.histogram(
                &format!("stardust_{class}_latency_ns"),
                "Per-append processing latency in nanoseconds (1-in-64 sampled)",
            ),
            tick: std::cell::Cell::new(0),
        }
    }
}

/// Everything the unified monitor wires up at once.
#[derive(Clone, Debug, Default)]
pub struct CoreTelemetry {
    /// Summarizer lifecycle counters.
    pub summarizer: SummarizerTelemetry,
    /// R\*-tree structural counters.
    pub index: IndexTelemetry,
    /// Aggregate-monitor (Algorithm 2) series.
    pub aggregate: ClassTelemetry,
    /// Trend-monitor (Algorithms 3–4, standing patterns) series.
    pub trend: ClassTelemetry,
    /// Correlation-monitor (§5.3) series.
    pub correlation: ClassTelemetry,
}

impl CoreTelemetry {
    /// Registers (or re-resolves) every core series in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CoreTelemetry {
            summarizer: SummarizerTelemetry::new(registry),
            index: IndexTelemetry::new(registry),
            aggregate: ClassTelemetry::new(registry, "aggregate"),
            trend: ClassTelemetry::new(registry, "trend"),
            correlation: ClassTelemetry::new(registry, "correlation"),
        }
    }
}
