//! Incremental regression models — the future-work direction of §7.
//!
//! "In the future, we will explore fitting incremental regression models
//! in our framework in order to enable parameter estimation, e.g.,
//! determining the right window sizes to monitor, for different kinds of
//! queries." This module realizes that sentence in the style of the
//! co-evolving-sequences regression the paper cites (Yi et al., ICDE
//! 2000):
//!
//! * [`RecursiveLeastSquares`] — exponentially forgetting RLS, the O(d²)
//!   per-item multivariate regression primitive;
//! * [`ArForecaster`] — an autoregressive one-step forecaster for a single
//!   stream built on it (current value as a linear combination of its own
//!   recent values, the §3 description of \[19\] restricted to one stream);
//! * [`recommend_windows`] — window-size estimation for aggregate
//!   monitors: candidate windows ranked by how sharply their sliding
//!   aggregate separates anomalies from the bulk (peak z-score), so a
//!   monitor can be configured from a training prefix instead of a guess.

use std::collections::VecDeque;

use crate::stats;
use crate::transform::TransformKind;

/// Multivariate linear regression via recursive least squares with an
/// exponential forgetting factor `λ ∈ (0, 1]` (λ = 1 gives ordinary
/// growing-window least squares).
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares {
    /// Inverse (weighted) covariance matrix, d×d row-major.
    p: Vec<f64>,
    /// Coefficient vector.
    w: Vec<f64>,
    lambda: f64,
    d: usize,
    samples: u64,
}

impl RecursiveLeastSquares {
    /// A model over `d` regressors. `delta` scales the initial inverse
    /// covariance `P = δ·I` (larger = faster initial adaptation).
    ///
    /// # Panics
    /// Panics if `d` is zero, `lambda` is outside `(0, 1]`, or `delta` is
    /// not positive.
    pub fn new(d: usize, lambda: f64, delta: f64) -> Self {
        assert!(d > 0, "need at least one regressor");
        assert!(lambda > 0.0 && lambda <= 1.0, "forgetting factor must be in (0, 1]");
        assert!(delta > 0.0, "initial covariance scale must be positive");
        let mut p = vec![0.0; d * d];
        for i in 0..d {
            p[i * d + i] = delta;
        }
        RecursiveLeastSquares { p, w: vec![0.0; d], lambda, d, samples: 0 }
    }

    /// Number of regressors.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Samples absorbed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current coefficient estimates.
    pub fn coefficients(&self) -> &[f64] {
        &self.w
    }

    /// Prediction `wᵀx` for regressor vector `x`.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.d, "regressor dimensionality mismatch");
        self.w.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Absorbs one observation `(x, y)`; returns the *a-priori* residual
    /// `y − wᵀx` (prediction error before the update).
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        assert_eq!(x.len(), self.d, "regressor dimensionality mismatch");
        let d = self.d;
        // px = P·x
        let mut px = vec![0.0; d];
        for i in 0..d {
            let row = &self.p[i * d..(i + 1) * d];
            px[i] = row.iter().zip(x).map(|(p, x)| p * x).sum();
        }
        // gain k = P·x / (λ + xᵀ·P·x)
        let denom = self.lambda + x.iter().zip(&px).map(|(x, px)| x * px).sum::<f64>();
        let err = y - self.predict(x);
        for i in 0..d {
            self.w[i] += px[i] / denom * err;
        }
        // P ← (P − k·xᵀ·P) / λ  with k = px/denom; xᵀ·P = pxᵀ (P symmetric).
        for i in 0..d {
            for j in 0..d {
                self.p[i * d + j] = (self.p[i * d + j] - px[i] * px[j] / denom) / self.lambda;
            }
        }
        self.samples += 1;
        err
    }
}

/// One-step-ahead autoregressive forecaster: predicts `x[t]` from
/// `[x[t−1], …, x[t−p], 1]` via [`RecursiveLeastSquares`].
///
/// ```
/// use stardust_core::regression::ArForecaster;
///
/// let mut ar = ArForecaster::new(1, 1.0);
/// let mut x = 0.0f64;
/// for _ in 0..200 {
///     ar.push(x);
///     x = 0.9 * x + 1.0; // AR(1) with fixed point 10
/// }
/// let coeffs = ar.coefficients();
/// assert!((coeffs[0] - 0.9).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct ArForecaster {
    rls: RecursiveLeastSquares,
    order: usize,
    lags: VecDeque<f64>,
    regressors: Vec<f64>,
    sse: f64,
    predictions: u64,
}

impl ArForecaster {
    /// An AR(`order`) forecaster with forgetting factor `lambda`.
    ///
    /// # Panics
    /// Panics if `order` is zero or `lambda` is outside `(0, 1]`.
    pub fn new(order: usize, lambda: f64) -> Self {
        assert!(order > 0, "order must be positive");
        ArForecaster {
            rls: RecursiveLeastSquares::new(order + 1, lambda, 1e4),
            order,
            lags: VecDeque::with_capacity(order),
            regressors: vec![0.0; order + 1],
            sse: 0.0,
            predictions: 0,
        }
    }

    /// The AR order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Feeds the next value; returns the prediction that was made for it
    /// (before seeing it), once `order` lags have accumulated.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let prediction = if self.lags.len() == self.order {
            for (slot, lag) in self.regressors.iter_mut().zip(self.lags.iter().rev()) {
                *slot = *lag;
            }
            self.regressors[self.order] = 1.0; // intercept
            let pred = self.rls.predict(&self.regressors);
            let err = self.rls.update(&self.regressors, x);
            self.sse += err * err;
            self.predictions += 1;
            Some(pred)
        } else {
            None
        };
        if self.lags.len() == self.order {
            self.lags.pop_front();
        }
        self.lags.push_back(x);
        prediction
    }

    /// Fitted coefficients `[φ₁, …, φ_p, intercept]` (φ₁ multiplies the
    /// most recent lag).
    pub fn coefficients(&self) -> &[f64] {
        self.rls.coefficients()
    }

    /// Root-mean-square one-step prediction error so far.
    pub fn rmse(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            (self.sse / self.predictions as f64).sqrt()
        }
    }
}

/// A candidate window ranked by [`recommend_windows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowScore {
    /// Window size.
    pub window: usize,
    /// Peak z-score of the window's sliding aggregate over the training
    /// series — how sharply the most anomalous period stands out.
    pub score: f64,
}

/// Ranks candidate window sizes for an aggregate monitor by anomaly
/// separability on a training series: for each window `w`, the sliding
/// aggregate series `y` is computed and scored by `max |y − μ_y| / σ_y`.
/// Windows matched to the burst timescale score highest, which is exactly
/// the parameter the paper's §7 wants estimated.
///
/// Returns scores sorted descending; candidates longer than the series or
/// with degenerate aggregates are skipped.
///
/// # Panics
/// Panics if `kind` is DWT (no scalar aggregate).
pub fn recommend_windows(
    series: &[f64],
    candidates: &[usize],
    kind: TransformKind,
) -> Vec<WindowScore> {
    assert_ne!(kind, TransformKind::Dwt, "window recommendation needs a scalar aggregate");
    let mut out: Vec<WindowScore> = candidates
        .iter()
        .filter(|&&w| w > 0 && w <= series.len())
        .filter_map(|&w| {
            let ys = sliding(series, w, kind);
            let mu = stats::mean(&ys);
            let sd = stats::std_dev(&ys);
            if sd <= 0.0 {
                return None;
            }
            let peak = ys.iter().map(|y| (y - mu).abs() / sd).fold(0.0f64, f64::max);
            Some(WindowScore { window: w, score: peak })
        })
        .collect();
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    out
}

fn sliding(series: &[f64], w: usize, kind: TransformKind) -> Vec<f64> {
    series.windows(w).map(|win| kind.scalar_aggregate(win).expect("scalar transform")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rls_recovers_linear_model() {
        // y = 3x₁ − 2x₂ + 0.5, noiseless.
        let mut rls = RecursiveLeastSquares::new(3, 1.0, 1e4);
        let mut seed = 9u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / 2f64.powi(31) - 1.0
        };
        for _ in 0..200 {
            let x = [next(), next(), 1.0];
            let y = 3.0 * x[0] - 2.0 * x[1] + 0.5;
            rls.update(&x, y);
        }
        let w = rls.coefficients();
        assert!((w[0] - 3.0).abs() < 1e-3, "{w:?}");
        assert!((w[1] + 2.0).abs() < 1e-3, "{w:?}");
        assert!((w[2] - 0.5).abs() < 1e-3, "{w:?}");
    }

    #[test]
    fn rls_residual_shrinks() {
        let mut rls = RecursiveLeastSquares::new(2, 1.0, 1e4);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..100 {
            let x = [(i % 7) as f64, 1.0];
            let y = 2.0 * x[0] + 1.0;
            let e = rls.update(&x, y).abs();
            if i == 1 {
                first = e;
            }
            last = e;
        }
        assert!(last < first * 1e-6 + 1e-9, "first {first}, last {last}");
    }

    #[test]
    fn forgetting_adapts_to_drift() {
        // The model switches halfway; λ < 1 adapts, λ = 1 averages.
        let gen = |i: usize, x: f64| if i < 300 { 2.0 * x } else { -2.0 * x };
        let run = |lambda: f64| {
            let mut rls = RecursiveLeastSquares::new(1, lambda, 1e4);
            for i in 0..600 {
                let x = [((i % 13) as f64 - 6.0) / 6.0];
                rls.update(&x, gen(i, x[0]));
            }
            rls.coefficients()[0]
        };
        let adaptive = run(0.9);
        let stubborn = run(1.0);
        assert!((adaptive + 2.0).abs() < 0.05, "adaptive coefficient {adaptive}");
        assert!((stubborn + 2.0).abs() > 0.2, "λ=1 should lag: {stubborn}");
    }

    #[test]
    fn ar_forecaster_learns_ar1() {
        // x[t] = 0.8·x[t−1] + 5 (fixed point 25), noiseless.
        let mut ar = ArForecaster::new(1, 1.0);
        let mut x = 0.0;
        for _ in 0..300 {
            ar.push(x);
            x = 0.8 * x + 5.0;
        }
        let w = ar.coefficients();
        assert!((w[0] - 0.8).abs() < 1e-3, "{w:?}");
        assert!((w[1] - 5.0).abs() < 0.05, "{w:?}");
        assert!(ar.rmse() < 1.0);
    }

    #[test]
    fn ar_forecaster_predicts_sine_well() {
        // A sine is an AR(2) process: predictions should become accurate.
        let mut ar = ArForecaster::new(2, 1.0);
        let mut errs = Vec::new();
        for i in 0..500 {
            let x = (i as f64 * 0.2).sin();
            if let Some(pred) = ar.push(x) {
                if i > 100 {
                    errs.push((pred - x).abs());
                }
            }
        }
        let max_err = errs.iter().copied().fold(0.0f64, f64::max);
        assert!(max_err < 1e-3, "max late error {max_err}");
    }

    #[test]
    fn window_recommendation_finds_burst_timescale() {
        // Flat series with a rectangular burst of length 40: among
        // candidate SUM windows, sizes near 40 must rank on top.
        let mut series = vec![1.0; 2000];
        for v in series.iter_mut().skip(900).take(40) {
            *v = 5.0;
        }
        let candidates = [5usize, 10, 20, 40, 80, 160, 320];
        let ranked = recommend_windows(&series, &candidates, TransformKind::Sum);
        assert_eq!(ranked.len(), candidates.len());
        assert!(ranked[0].window == 40, "expected 40 on top, got {:?}", &ranked[..3]);
        // Scores strictly ordered and finite.
        for pair in ranked.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn window_recommendation_skips_degenerate() {
        let series = vec![2.0; 100]; // constant: σ = 0 for every window
        let ranked = recommend_windows(&series, &[4, 8], TransformKind::Sum);
        assert!(ranked.is_empty());
    }

    #[test]
    #[should_panic(expected = "scalar aggregate")]
    fn window_recommendation_rejects_dwt() {
        recommend_windows(&[1.0; 50], &[8], TransformKind::Dwt);
    }
}
