//! # Stardust — monitoring data streams in real time
//!
//! A from-scratch implementation of the stream-monitoring framework of
//! Bulut & Singh, *A Unified Framework for Monitoring Data Streams in Real
//! Time* (ICDE 2005).
//!
//! The core idea: extract features over sliding windows at **multiple
//! resolutions** — the window doubles per level — and compute each level's
//! features incrementally **from the level below** (exactly when features
//! are kept individually, approximately via MBR extents when every `c`
//! features are boxed to save space). The result is a summary with tunable
//! time/space/accuracy (`Θ(f)` per level per item; `Θ(2^{j−1}W/(c·T_{j−1}))`
//! space at level `j`) that serves three query classes over flexible,
//! a-priori-unknown window sizes:
//!
//! | Query class | Entry point | Paper |
//! |---|---|---|
//! | Aggregate monitoring (bursts, volatility) | [`query::aggregate::AggregateMonitor`] | §5.1, Alg. 2 |
//! | Pattern matching (variable-length similarity) | [`query::pattern::query_online`] / [`query::pattern::query_batch`] on a [`engine::Stardust`] | §5.2, Alg. 3–4 |
//! | k-most-similar search | [`query::pattern::nearest_online`] | §1 finance scenario |
//! | Continuous trend monitoring (standing patterns) | [`query::trend::TrendMonitor`] | §2.3 |
//! | Correlation monitoring (incl. lagged pairs) | [`query::correlation::CorrelationMonitor`] | §5.3 |
//! | Window-size estimation / forecasting | [`regression`] | §7 future work |
//!
//! All three share the same summarization substrate
//! ([`summarizer::StreamSummary`], Algorithm 1) — that shared substrate is
//! the paper's "unified framework" claim.
//!
//! ## Quick example
//!
//! ```
//! use stardust_core::config::Config;
//! use stardust_core::transform::TransformKind;
//! use stardust_core::query::aggregate::{AggregateMonitor, WindowSpec};
//!
//! // Monitor bursts over 20- and 40-value windows of one stream.
//! let config = Config::online(TransformKind::Sum, 20, 4, 5);
//! let windows = [
//!     WindowSpec { window: 20, threshold: 30.0 },
//!     WindowSpec { window: 40, threshold: 55.0 },
//! ];
//! let mut monitor = AggregateMonitor::new(config, &windows);
//! for t in 0..200 {
//!     let value = if (100..120).contains(&t) { 3.0 } else { 1.0 };
//!     for alarm in monitor.push(value) {
//!         if alarm.is_true_alarm {
//!             println!("burst over {} values at t={}", alarm.window, alarm.time);
//!         }
//!     }
//! }
//! assert!(monitor.stats().true_alarms > 0);
//! ```

pub mod config;
pub mod engine;
pub mod error;
pub mod mbr;
pub mod normalize;
pub mod query;
pub mod regression;
pub mod sketch;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod summarizer;
pub mod telemetry;
pub mod transform;
pub mod unified;

pub use config::{ComputeMode, Config, UpdatePolicy};
pub use engine::{IndexEntry, Stardust};
pub use error::QueryError;
pub use mbr::FeatureMbr;
pub use sketch::{BlockSketch, SketchDelta, SketchProjection, PRUNE_SLACK};
pub use stream::{StreamHistory, StreamId, Time};
pub use summarizer::{StreamSummary, SummaryEvent};
pub use transform::{MergePrecision, TransformKind};
