//! CSV serialization of generated workloads, matching the column format
//! the `stardust` CLI consumes (one column per stream, `#` comments).

use std::fmt::Write as _;

/// Renders streams as CSV columns (rows = time steps).
///
/// # Panics
/// Panics if the streams differ in length or none are given.
pub fn to_csv(streams: &[Vec<f64>]) -> String {
    assert!(!streams.is_empty(), "need at least one stream");
    let n = streams[0].len();
    assert!(streams.iter().all(|s| s.len() == n), "streams must have equal lengths");
    let mut out = String::with_capacity(n * streams.len() * 8);
    for i in 0..n {
        for (s, col) in streams.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            // Shortest round-trippable representation.
            write!(out, "{}", col[i]).expect("string write");
        }
        out.push('\n');
    }
    out
}

/// Parses the CSV column format back into streams — inverse of
/// [`to_csv`], tolerant of blank lines and `#` comments.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn from_csv(text: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut streams: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, String> = line
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad number '{c}'", lineno + 1))
            })
            .collect();
        let row = row?;
        if streams.is_empty() {
            streams = row.into_iter().map(|v| vec![v]).collect();
        } else if row.len() != streams.len() {
            return Err(format!(
                "line {}: expected {} columns, found {}",
                lineno + 1,
                streams.len(),
                row.len()
            ));
        } else {
            for (col, v) in streams.iter_mut().zip(row) {
                col.push(v);
            }
        }
    }
    if streams.is_empty() {
        return Err("no data rows".to_string());
    }
    Ok(streams)
}

/// Writes streams to a file in the CSV column format.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(path: &std::path::Path, streams: &[Vec<f64>]) -> std::io::Result<()> {
    std::fs::write(path, to_csv(streams))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let streams = vec![vec![1.0, 2.5, -3.0], vec![0.125, 7.0, 1e-9]];
        let text = to_csv(&streams);
        let back = from_csv(&text).expect("roundtrip");
        assert_eq!(back, streams);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n1,2\n\n3,4\n";
        assert_eq!(from_csv(text).unwrap(), vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }

    #[test]
    fn errors() {
        assert!(from_csv("").is_err());
        assert!(from_csv("1,2\n3\n").is_err());
        assert!(from_csv("x\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("stardust_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streams.csv");
        let streams = crate::random_walk::random_walk_streams(3, 2, 50);
        write_csv(&path, &streams).unwrap();
        let back = from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in streams.iter().zip(&back) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_rejected() {
        to_csv(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
