//! Distribution samplers built on a uniform source.
//!
//! The allowed dependency set contains `rand` but not `rand_distr`, so the
//! Poisson, Pareto, exponential and normal samplers the workload generators
//! need are implemented here (inverse-transform / Box–Muller / Knuth).

use rand::prelude::*;

/// A standard-normal sample via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// An exponential sample with rate `lambda` (mean `1/λ`).
///
/// # Panics
/// Panics if `lambda` is not positive.
pub fn exponential(rng: &mut impl Rng, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / lambda
}

/// A Poisson sample with mean `lambda` (Knuth's product method for small
/// means, normal approximation above 64 — adequate for count workloads).
///
/// # Panics
/// Panics if `lambda` is negative.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "mean must be nonnegative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let x = normal_with(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A Pareto sample with scale `xm > 0` and shape `alpha > 0`
/// (inverse transform: `xm / U^{1/α}`). Heavy-tailed for `α ≤ 2` — the
/// regime that produces self-similar ON/OFF traffic.
///
/// # Panics
/// Panics if `xm` or `alpha` is not positive.
pub fn pareto(rng: &mut impl Rng, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0, "Pareto parameters must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    xm / u.powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let m = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let mut r = rng();
        let n = 20_000;
        let m = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((m - 3.5).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut r = rng();
        let n = 5_000;
        let m = (0..n).map(|_| poisson(&mut r, 200.0) as f64).sum::<f64>() / n as f64;
        assert!((m - 200.0).abs() < 2.0, "mean {m}");
    }

    #[test]
    fn poisson_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn pareto_bounds_and_tail() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Median of Pareto(xm, α) is xm·2^{1/α} ≈ 3.1748.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        assert!((median - 2.0 * 2f64.powf(1.0 / 1.5)).abs() < 0.15, "median {median}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }
}
