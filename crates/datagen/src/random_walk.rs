//! The paper's synthetic model (§6): random-walk streams.
//!
//! "For a stream x, the value at time i (0 < i) is
//! `x[i] = R + Σ_{j=1..i} (u_j − 0.5)` where R is a constant uniform random
//! number in [0, 100] and `u_j` are uniform random reals in [0, 1]."

use rand::prelude::*;
use rand::rngs::StdRng;

/// One random-walk stream of `n` values, per the paper's model.
pub fn random_walk(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let r: f64 = rng.random::<f64>() * 100.0;
    let mut x = r;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(x);
        x += rng.random::<f64>() - 0.5;
    }
    out
}

/// `m` independent random-walk streams of `n` values each.
pub fn random_walk_streams(seed: u64, m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|s| {
            random_walk(seed.wrapping_add(s as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed, n)
        })
        .collect()
}

/// The smallest `R_max` covering all values of the given streams (§2.1
/// assumes values in `[0, R_max]`; the walk is unbounded, so experiments
/// derive the bound from the generated data and clamp).
pub fn observed_r_max(streams: &[Vec<f64>]) -> f64 {
    streams.iter().flat_map(|s| s.iter().copied()).fold(1.0f64, |acc, v| acc.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_walk(11, 100), random_walk(11, 100));
        assert_ne!(random_walk(11, 100), random_walk(12, 100));
    }

    #[test]
    fn starts_in_range_and_walks_slowly() {
        let w = random_walk(5, 1000);
        assert!(w[0] >= 0.0 && w[0] <= 100.0);
        for pair in w.windows(2) {
            assert!((pair[1] - pair[0]).abs() <= 0.5);
        }
    }

    #[test]
    fn streams_are_independent() {
        let ss = random_walk_streams(3, 4, 50);
        assert_eq!(ss.len(), 4);
        assert_ne!(ss[0], ss[1]);
        assert_ne!(ss[1], ss[2]);
    }

    #[test]
    fn r_max_covers_everything() {
        let ss = random_walk_streams(9, 3, 500);
        let rm = observed_r_max(&ss);
        for s in &ss {
            for &v in s {
                assert!(v.abs() <= rm);
            }
        }
    }
}
