//! Workload generators reproducing the datasets of the Stardust
//! evaluation (§6).
//!
//! The paper's real datasets (UCR `burst.dat` / `packet.dat`, the CMU Host
//! Load traces) are not redistributable, so each is replaced by a seeded
//! synthetic generator that reproduces the statistical structure the
//! corresponding experiment depends on — see the module docs and DESIGN.md
//! for the substitution arguments:
//!
//! * [`random_walk`](mod@random_walk) — the paper's own synthetic model, implemented
//!   verbatim.
//! * [`burst`] — Poisson background + heavy-tailed injected showers
//!   (`burst.dat`).
//! * [`packet`] — superposed Pareto ON/OFF sources, long-range dependent
//!   (`packet.dat`).
//! * [`hostload`] — AR(1) around a drifting mean with job spikes (CMU
//!   Host Load).
//! * [`sampler`] — the underlying distribution samplers (normal, Poisson,
//!   Pareto, exponential), hand-rolled to keep the dependency set minimal.
//!
//! Every generator is deterministic in its seed.

pub mod burst;
pub mod csv;
pub mod hostload;
pub mod packet;
pub mod random_walk;
pub mod sampler;

pub use burst::{burst_dat, burst_series, BurstParams};
pub use csv::{from_csv, to_csv, write_csv};
pub use hostload::{host_load_fleet, host_load_trace, HostLoadParams};
pub use packet::{packet_dat, packet_series, PacketParams};
pub use random_walk::{random_walk, random_walk_streams};
