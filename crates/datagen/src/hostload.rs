//! Host-load traces — the CMU Host Load substitute.
//!
//! §6.2 evaluates pattern queries on the 1997 CMU host load traces (570
//! machines × 3K measurements of Unix load average). Load averages are
//! smooth, positively autocorrelated series with slow diurnal-style drifts
//! and occasional job-arrival spikes; their energy concentrates in the low
//! frequencies, which is why a handful of coarse DWT coefficients carries
//! the trend (§4). We reproduce that profile with an AR(1) process around
//! a slowly drifting mean plus exponentially decaying spikes.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::sampler::normal;

/// Parameters of the host-load workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLoadParams {
    /// AR(1) coefficient (close to 1 = smooth).
    pub ar: f64,
    /// Innovation standard deviation.
    pub noise: f64,
    /// Baseline load level.
    pub base_level: f64,
    /// Amplitude of the slow sinusoidal drift.
    pub drift_amplitude: f64,
    /// Period of the drift (ticks).
    pub drift_period: f64,
    /// Probability of a job-arrival spike per tick.
    pub spike_prob: f64,
    /// Spike magnitude.
    pub spike_height: f64,
}

impl Default for HostLoadParams {
    fn default() -> Self {
        HostLoadParams {
            ar: 0.97,
            noise: 0.08,
            base_level: 1.0,
            drift_amplitude: 0.6,
            drift_period: 900.0,
            spike_prob: 0.004,
            spike_height: 2.0,
        }
    }
}

/// One host-load trace of `n` measurements (nonnegative).
pub fn host_load_trace(seed: u64, n: usize, params: &HostLoadParams) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Randomize the drift phase per machine.
    let phase: f64 = rng.random::<f64>() * std::f64::consts::TAU;
    let mut dev = 0.0f64; // AR(1) deviation around the drifting mean
    let mut spike = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let drift = params.base_level
            + params.drift_amplitude
                * (std::f64::consts::TAU * i as f64 / params.drift_period + phase).sin();
        dev = params.ar * dev + params.noise * normal(&mut rng);
        if rng.random::<f64>() < params.spike_prob {
            spike += params.spike_height * (0.5 + rng.random::<f64>());
        }
        spike *= 0.95;
        out.push((drift + dev + spike).max(0.0));
    }
    out
}

/// A fleet of host-load traces, paper-sized by default (`machines` of
/// length `n`; the paper uses 570 × 3K and monitors M = 25 of them).
pub fn host_load_fleet(seed: u64, machines: usize, n: usize) -> Vec<Vec<f64>> {
    let params = HostLoadParams::default();
    (0..machines)
        .map(|m| host_load_trace(seed ^ (m as u64).wrapping_mul(0x9E3779B97F4A7C15), n, &params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonnegative() {
        let p = HostLoadParams::default();
        let a = host_load_trace(1, 3000, &p);
        assert_eq!(a, host_load_trace(1, 3000, &p));
        assert!(a.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn strong_positive_autocorrelation() {
        let s = host_load_trace(5, 3000, &HostLoadParams::default());
        let m = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|x| (x - m) * (x - m)).sum();
        let cov: f64 = s.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
        let rho = cov / var;
        assert!(rho > 0.8, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn low_frequency_energy_dominates() {
        // The first 4 of 64 Haar approximation coefficients should carry
        // most of the centered energy — the property §4 relies on.
        let s = host_load_trace(9, 4096, &HostLoadParams::default());
        let window = &s[..1024];
        let m = window.iter().sum::<f64>() / 1024.0;
        let centered: Vec<f64> = window.iter().map(|x| x - m).collect();
        let total: f64 = centered.iter().map(|x| x * x).sum();
        // Energy in the length-4 approximation.
        let mut a = centered.clone();
        while a.len() > 4 {
            a = a
                .chunks_exact(2)
                .map(|p| (p[0] + p[1]) * std::f64::consts::FRAC_1_SQRT_2)
                .collect();
        }
        let coarse: f64 = a.iter().map(|x| x * x).sum();
        assert!(coarse > 0.4 * total, "coarse energy {coarse} of {total} — spectrum too flat");
    }

    #[test]
    fn fleet_traces_differ() {
        let fleet = host_load_fleet(3, 5, 200);
        assert_eq!(fleet.len(), 5);
        assert_ne!(fleet[0], fleet[1]);
    }
}
