//! Self-similar packet-count traffic — the `packet.dat` substitute.
//!
//! §6.1.2 measures volatility (SPREAD) detection on `packet.dat`, a
//! 360,000-point network packet trace. Real packet traces exhibit
//! long-range dependence; the standard generative model for that behaviour
//! is the superposition of ON/OFF sources whose ON/OFF period lengths are
//! heavy-tailed (Pareto with shape `1 < α < 2`) — aggregating many such
//! sources converges to self-similar traffic (Willinger et al.). The
//! resulting series shows bursts of volatility at every timescale, which
//! is what the multi-window SPREAD monitors stress.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::sampler::{pareto, poisson};

/// Parameters of the traffic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketParams {
    /// Number of superposed ON/OFF sources.
    pub sources: usize,
    /// Mean packets per tick of one source while ON.
    pub on_rate: f64,
    /// Pareto shape of ON/OFF durations (`1 < α < 2` for self-similarity).
    pub shape: f64,
    /// Pareto scale (minimum period length, ticks).
    pub min_period: f64,
}

impl Default for PacketParams {
    fn default() -> Self {
        PacketParams { sources: 24, on_rate: 5.0, shape: 1.4, min_period: 8.0 }
    }
}

/// Generates `n` ticks of aggregate packet counts.
pub fn packet_series(seed: u64, n: usize, params: &PacketParams) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; n];
    for _ in 0..params.sources {
        let mut t = 0usize;
        // Randomize initial phase: start ON or OFF with equal probability.
        let mut on = rng.random::<f64>() < 0.5;
        while t < n {
            let period = pareto(&mut rng, params.min_period, params.shape).round() as usize;
            let end = (t + period.max(1)).min(n);
            if on {
                for c in counts.iter_mut().take(end).skip(t) {
                    *c += poisson(&mut rng, params.on_rate);
                }
            }
            t = end;
            on = !on;
        }
    }
    counts.into_iter().map(|c| c as f64).collect()
}

/// The `packet.dat` substitute at the paper's size (360,000 points).
pub fn packet_dat(seed: u64) -> Vec<f64> {
    packet_series(seed, 360_000, &PacketParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = PacketParams::default();
        assert_eq!(packet_series(2, 5_000, &p), packet_series(2, 5_000, &p));
    }

    #[test]
    fn counts_nonnegative() {
        let s = packet_series(4, 10_000, &PacketParams::default());
        assert!(s.iter().all(|&v| v >= 0.0));
        assert!(s.iter().any(|&v| v > 0.0));
    }

    /// Aggregated variance of self-similar traffic decays slower than 1/m
    /// under m-aggregation (the variance-time signature of long-range
    /// dependence). We check that the decay exponent β is clearly < 1
    /// (Poisson/iid traffic would give β ≈ 1).
    #[test]
    fn variance_time_plot_shows_long_range_dependence() {
        let s = packet_series(77, 200_000, &PacketParams::default());
        let var_of = |block: usize| -> f64 {
            let means: Vec<f64> =
                s.chunks_exact(block).map(|c| c.iter().sum::<f64>() / block as f64).collect();
            let m = means.iter().sum::<f64>() / means.len() as f64;
            means.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / means.len() as f64
        };
        let v1 = var_of(1);
        let v100 = var_of(100);
        // β estimated from var(m) ≈ var(1)·m^{−β}.
        let beta = -(v100 / v1).ln() / 100f64.ln();
        assert!(beta < 0.9, "β = {beta} suggests no long-range dependence");
        assert!(beta > 0.05, "β = {beta} suggests degenerate data");
    }

    #[test]
    fn spread_varies_across_scales() {
        let s = packet_series(13, 50_000, &PacketParams::default());
        let spread = |w: &[f64]| {
            w.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - w.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let spreads: Vec<f64> = s.chunks_exact(500).map(spread).collect();
        let mn = spreads.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = spreads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(mx > mn * 1.5, "volatility should vary: {mn}..{mx}");
    }
}
