//! Gamma-ray-burst-like event counts — the `burst.dat` substitute.
//!
//! The paper's burst-detection experiment (§6.1.1) runs on `burst.dat`, a
//! 9,382-point series of high-energy event counts from the UCR archive,
//! which is no longer redistributable. This generator reproduces its
//! defining structure: a Poisson background of detector noise with
//! occasional *showers* — intervals of strongly elevated rate whose
//! durations span orders of magnitude ("a few milliseconds, a few hours,
//! or even a few days"), which is precisely what makes fixed-window burst
//! detection inadequate and variable-window monitoring necessary.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::sampler::{pareto, poisson};

/// Parameters of the burst workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Background Poisson rate (events per tick).
    pub background_rate: f64,
    /// Expected number of injected bursts per 1,000 ticks.
    pub bursts_per_kilo_tick: f64,
    /// Minimum burst duration (ticks).
    pub min_duration: usize,
    /// Pareto shape of the duration distribution (heavier tail = more
    /// long-timescale bursts).
    pub duration_shape: f64,
    /// Burst intensity: rate multiplier during a shower.
    pub intensity: f64,
}

impl Default for BurstParams {
    fn default() -> Self {
        BurstParams {
            background_rate: 2.0,
            bursts_per_kilo_tick: 4.0,
            min_duration: 4,
            duration_shape: 1.1,
            intensity: 4.0,
        }
    }
}

/// A generated burst interval (ground truth for recall checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstInterval {
    /// First tick of the shower.
    pub start: usize,
    /// Length in ticks.
    pub duration: usize,
}

/// Generates `n` ticks of event counts plus the injected burst intervals.
pub fn burst_series(seed: u64, n: usize, params: &BurstParams) -> (Vec<f64>, Vec<BurstInterval>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut boost = vec![1.0f64; n];
    let expected = params.bursts_per_kilo_tick * n as f64 / 1000.0;
    let count = poisson(&mut rng, expected) as usize;
    let mut intervals = Vec::with_capacity(count);
    for _ in 0..count {
        let start = rng.random_range(0..n.max(1));
        let duration = (pareto(&mut rng, params.min_duration as f64, params.duration_shape).round()
            as usize)
            .clamp(params.min_duration, n / 4 + 1);
        intervals.push(BurstInterval { start, duration });
        for b in boost.iter_mut().skip(start).take(duration) {
            *b = params.intensity;
        }
    }
    let series =
        boost.iter().map(|&b| poisson(&mut rng, params.background_rate * b) as f64).collect();
    (series, intervals)
}

/// The `burst.dat` substitute at the paper's size (9,382 points).
pub fn burst_dat(seed: u64) -> (Vec<f64>, Vec<BurstInterval>) {
    burst_series(seed, 9_382, &BurstParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(burst_dat(1).0, burst_dat(1).0);
    }

    #[test]
    fn paper_size() {
        assert_eq!(burst_dat(7).0.len(), 9_382);
    }

    #[test]
    fn counts_are_nonnegative_integers() {
        let (s, _) = burst_dat(3);
        for &v in &s {
            assert!(v >= 0.0 && v.fract() == 0.0);
        }
    }

    #[test]
    fn bursts_elevate_local_sums() {
        let (s, bursts) = burst_series(5, 20_000, &BurstParams::default());
        assert!(!bursts.is_empty(), "expected injected bursts");
        let global_mean = s.iter().sum::<f64>() / s.len() as f64;
        // Average rate inside the longest burst should clearly exceed the
        // global mean.
        let longest = bursts.iter().max_by_key(|b| b.duration).unwrap();
        let end = (longest.start + longest.duration).min(s.len());
        if end > longest.start + 8 {
            let inside: f64 =
                s[longest.start..end].iter().sum::<f64>() / (end - longest.start) as f64;
            assert!(inside > global_mean * 1.5, "burst mean {inside} vs global {global_mean}");
        }
    }

    #[test]
    fn duration_spread_spans_scales() {
        let (_, bursts) = burst_series(11, 50_000, &BurstParams::default());
        let min = bursts.iter().map(|b| b.duration).min().unwrap();
        let max = bursts.iter().map(|b| b.duration).max().unwrap();
        assert!(max >= min * 8, "durations should span scales: {min}..{max}");
    }
}
