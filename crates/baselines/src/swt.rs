//! SWT — Shifted-Wavelet-Tree burst detection (Zhu & Shasha, KDD 2003).
//!
//! The elastic-burst baseline of §6.1. For monitored windows
//! `w_1 ≤ … ≤ w_m`, SWT maintains one moving aggregate per dyadic level
//! `j` (window `W·2^j`); a query window `w_i` is watched by the *lowest*
//! level with `w_i ≤ W·2^j`, and the level's threshold is the minimum of
//! its windows' thresholds. When the level aggregate crosses that
//! threshold, every window assigned to the level is checked brute-force
//! against the raw data. Because the covering window is up to 2× the
//! monitored window (the `T ∈ [1, 2)` of Eq. 6), SWT raises substantially
//! more false alarms than Stardust's binary-decomposition bound — that gap
//! is Fig. 4.

use std::collections::VecDeque;

use stardust_core::query::aggregate::{AlarmStats, WindowSpec};
use stardust_core::stream::{StreamHistory, Time};
use stardust_core::transform::TransformKind;

struct Level {
    /// Covering window `W·2^j`.
    window: usize,
    /// Minimum threshold of the windows assigned here.
    tau: f64,
    /// The monitored windows watched through this level.
    assigned: Vec<WindowSpec>,
    /// Running sum over the covering window (SUM).
    run_sum: f64,
    /// Monotonic deques over the covering window (MAX / SPREAD).
    maxd: VecDeque<(Time, f64)>,
    mind: VecDeque<(Time, f64)>,
}

impl Level {
    fn aggregate(&self, kind: TransformKind) -> f64 {
        match kind {
            TransformKind::Sum => self.run_sum,
            TransformKind::Max => self.maxd.front().expect("warm level").1,
            TransformKind::Spread => {
                self.maxd.front().expect("warm level").1 - self.mind.front().expect("warm level").1
            }
            TransformKind::Min | TransformKind::Dwt => unreachable!("rejected at construction"),
        }
    }
}

/// An SWT monitor over a single stream.
pub struct SwtMonitor {
    kind: TransformKind,
    history: StreamHistory,
    levels: Vec<Level>,
    stats: AlarmStats,
    scratch: Vec<f64>,
}

/// One candidate alarm raised by SWT (a brute-force check triggered by a
/// level-threshold crossing).
#[derive(Debug, Clone, PartialEq)]
pub struct SwtAlarm {
    /// The monitored window checked.
    pub window: usize,
    /// Current time.
    pub time: Time,
    /// True aggregate over the monitored window.
    pub true_value: f64,
    /// Whether the monitored window's own threshold was crossed.
    pub is_true_alarm: bool,
}

impl SwtMonitor {
    /// Builds the shifted wavelet tree for the given monitored windows.
    /// `base_window` is the unit `W`; each window is assigned to the
    /// lowest level `j` with `w ≤ W·2^j`.
    ///
    /// # Panics
    /// Panics if `specs` is empty, a window is smaller than `W`, or the
    /// transform is MIN/DWT (SWT covers upper-bounded aggregates only).
    pub fn new(kind: TransformKind, base_window: usize, specs: &[WindowSpec]) -> Self {
        assert!(!specs.is_empty(), "need at least one monitored window");
        assert!(base_window >= 1, "base window must be positive");
        assert!(
            matches!(kind, TransformKind::Sum | TransformKind::Max | TransformKind::Spread),
            "SWT supports SUM/MAX/SPREAD aggregates"
        );
        let max_w = specs.iter().map(|s| s.window).max().expect("nonempty");
        let mut n_levels = 0usize;
        while base_window << n_levels < max_w {
            n_levels += 1;
        }
        let mut levels: Vec<Level> = (0..=n_levels)
            .map(|j| Level {
                window: base_window << j,
                tau: f64::INFINITY,
                assigned: Vec::new(),
                run_sum: 0.0,
                maxd: VecDeque::new(),
                mind: VecDeque::new(),
            })
            .collect();
        for &spec in specs {
            assert!(spec.window >= base_window, "window smaller than the base unit");
            let j = levels
                .iter()
                .position(|l| spec.window <= l.window)
                .expect("levels cover the largest window");
            levels[j].tau = levels[j].tau.min(spec.threshold);
            levels[j].assigned.push(spec);
        }
        levels.retain(|l| !l.assigned.is_empty());
        // The covering level window can be up to 2× the largest monitored
        // window; the running sums subtract the value leaving it.
        let capacity = levels.iter().map(|l| l.window).max().expect("nonempty levels") + 1;
        SwtMonitor {
            kind,
            history: StreamHistory::new(capacity),
            levels,
            stats: AlarmStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Cumulative alarm statistics (same metric as the Stardust monitor).
    pub fn stats(&self) -> AlarmStats {
        self.stats
    }

    /// Appends a value; returns the brute-force checks (candidate alarms)
    /// triggered at this step.
    pub fn push(&mut self, value: f64) -> Vec<SwtAlarm> {
        let t = self.history.push(value);
        let kind = self.kind;
        // Maintain per-level aggregates.
        for level in &mut self.levels {
            let w = level.window as u64;
            match kind {
                TransformKind::Sum => {
                    level.run_sum += value;
                    if t >= w {
                        let old = self.history.get(t - w).expect("capacity covers window");
                        level.run_sum -= old;
                    }
                }
                TransformKind::Max | TransformKind::Spread => {
                    while level.maxd.back().is_some_and(|&(_, v)| v <= value) {
                        level.maxd.pop_back();
                    }
                    level.maxd.push_back((t, value));
                    while level.mind.back().is_some_and(|&(_, v)| v >= value) {
                        level.mind.pop_back();
                    }
                    level.mind.push_back((t, value));
                    let cutoff = (t + 1).saturating_sub(w);
                    while level.maxd.front().is_some_and(|&(ft, _)| ft < cutoff) {
                        level.maxd.pop_front();
                    }
                    while level.mind.front().is_some_and(|&(ft, _)| ft < cutoff) {
                        level.mind.pop_front();
                    }
                }
                _ => unreachable!(),
            }
        }
        // Check level thresholds, brute-force the assigned windows.
        let mut alarms = Vec::new();
        for li in 0..self.levels.len() {
            let level = &self.levels[li];
            // Before the covering window is full, the aggregate over all
            // available data is still a valid upper bound for any assigned
            // window that *is* full, so the level is checked from the
            // first arrival on.
            let crossed = level.aggregate(kind) >= level.tau;
            for ai in 0..self.levels[li].assigned.len() {
                let spec = self.levels[li].assigned[ai];
                if t + 1 < spec.window as u64 {
                    continue;
                }
                self.stats.checks += 1;
                if !crossed {
                    continue;
                }
                self.stats.candidates += 1;
                let mut buf = std::mem::take(&mut self.scratch);
                let ok = self.history.copy_window(t, spec.window, &mut buf);
                debug_assert!(ok);
                let true_value = kind.scalar_aggregate(&buf).expect("scalar transform");
                self.scratch = buf;
                let is_true_alarm = true_value >= spec.threshold;
                if is_true_alarm {
                    self.stats.true_alarms += 1;
                }
                alarms.push(SwtAlarm { window: spec.window, time: t, true_value, is_true_alarm });
            }
        }
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = 1.0 + ((i * 7) % 5) as f64 * 0.1;
                // An early burst (inside the covering-window warm-up of the
                // larger levels) and a late one.
                if (32..70).contains(&i) || (300..360).contains(&i) {
                    base + 6.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn detects_the_burst() {
        let specs = [WindowSpec { window: 40, threshold: 150.0 }];
        let mut swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
        let mut true_alarms = 0;
        for x in bursty(600) {
            true_alarms += swt.push(x).iter().filter(|a| a.is_true_alarm).count();
        }
        assert!(true_alarms > 0, "burst missed");
    }

    #[test]
    fn never_misses_what_bruteforce_finds() {
        // Covering-window monotonicity: SUM over W·2^j ≥ SUM over w ⇒ any
        // true alarm also crosses the level threshold.
        let data = bursty(700);
        let specs = [
            WindowSpec { window: 30, threshold: 100.0 },
            WindowSpec { window: 50, threshold: 170.0 },
        ];
        let mut swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
        let mut raised: Vec<(usize, Time)> = Vec::new();
        for &x in &data {
            raised
                .extend(swt.push(x).iter().filter(|a| a.is_true_alarm).map(|a| (a.window, a.time)));
        }
        // Brute force ground truth.
        let mut expect = Vec::new();
        for &spec in &specs {
            for t in spec.window - 1..data.len() {
                let s: f64 = data[t + 1 - spec.window..=t].iter().sum();
                if s >= spec.threshold {
                    expect.push((spec.window, t as Time));
                }
            }
        }
        raised.sort_unstable();
        expect.sort_unstable();
        assert_eq!(raised, expect);
    }

    #[test]
    fn raises_false_alarms_unlike_exact_monitoring() {
        // With a window strictly between two dyadic sizes, the covering
        // window inflates the aggregate and produces false alarms.
        let data = bursty(700);
        let specs = [WindowSpec { window: 30, threshold: 120.0 }];
        let mut swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
        for &x in &data {
            swt.push(x);
        }
        let st = swt.stats();
        assert!(st.candidates > st.true_alarms, "expected false alarms: {st:?}");
        assert!(st.precision() < 1.0);
    }

    #[test]
    fn spread_monitoring_works() {
        let data = bursty(600);
        let specs = [WindowSpec { window: 25, threshold: 5.0 }];
        let mut swt = SwtMonitor::new(TransformKind::Spread, 10, &specs);
        let mut any_true = false;
        for &x in &data {
            any_true |= swt.push(x).iter().any(|a| a.is_true_alarm);
        }
        assert!(any_true, "spread burst missed");
        // Verify against brute force for recall.
        let spec = specs[0];
        let mut expect = 0usize;
        for t in spec.window - 1..data.len() {
            let win = &data[t + 1 - spec.window..=t];
            let spread = win.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - win.iter().copied().fold(f64::INFINITY, f64::min);
            if spread >= spec.threshold {
                expect += 1;
            }
        }
        assert_eq!(swt.stats().true_alarms as usize, expect);
    }

    #[test]
    fn level_assignment_uses_lowest_cover() {
        // Windows 10, 15, 40 with W = 10 need levels 10, 20, 40.
        let specs = [
            WindowSpec { window: 10, threshold: 1e12 },
            WindowSpec { window: 15, threshold: 1e12 },
            WindowSpec { window: 40, threshold: 1e12 },
        ];
        let swt = SwtMonitor::new(TransformKind::Sum, 10, &specs);
        let sizes: Vec<usize> = swt.levels.iter().map(|l| l.window).collect();
        assert_eq!(sizes, vec![10, 20, 40]);
    }

    #[test]
    #[should_panic(expected = "SUM/MAX/SPREAD")]
    fn rejects_min() {
        let _ =
            SwtMonitor::new(TransformKind::Min, 10, &[WindowSpec { window: 10, threshold: 0.0 }]);
    }
}
