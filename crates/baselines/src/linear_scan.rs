//! Linear-scan ground truth for every query class.
//!
//! The precision metrics of §6 are ratios against exhaustive answers;
//! these helpers compute them directly over raw series. They are also the
//! "more than ten/hundred times slower" comparator the paper mentions for
//! SWT.

use stardust_core::normalize;
use stardust_core::query::aggregate::WindowSpec;
use stardust_core::transform::TransformKind;

/// The sliding aggregate series of `series` under window `w` — one value
/// per window position (the `y` of the §6.1 threshold-training procedure).
///
/// SUM/MAX/MIN run in Θ(n) via running sums / monotonic deques; SPREAD
/// combines the two deques.
///
/// # Panics
/// Panics if `w` is zero or the transform is DWT.
pub fn sliding_aggregate(series: &[f64], w: usize, kind: TransformKind) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    assert_ne!(kind, TransformKind::Dwt, "DWT has no scalar aggregate");
    if series.len() < w {
        return Vec::new();
    }
    let n = series.len();
    let mut out = Vec::with_capacity(n - w + 1);
    match kind {
        TransformKind::Sum => {
            let mut acc: f64 = series[..w].iter().sum();
            out.push(acc);
            for t in w..n {
                acc += series[t] - series[t - w];
                out.push(acc);
            }
        }
        TransformKind::Max | TransformKind::Min | TransformKind::Spread => {
            let mut maxd: std::collections::VecDeque<usize> = Default::default();
            let mut mind: std::collections::VecDeque<usize> = Default::default();
            for t in 0..n {
                while maxd.back().is_some_and(|&i| series[i] <= series[t]) {
                    maxd.pop_back();
                }
                maxd.push_back(t);
                while mind.back().is_some_and(|&i| series[i] >= series[t]) {
                    mind.pop_back();
                }
                mind.push_back(t);
                if t + 1 >= w {
                    let cutoff = t + 1 - w;
                    while maxd.front().is_some_and(|&i| i < cutoff) {
                        maxd.pop_front();
                    }
                    while mind.front().is_some_and(|&i| i < cutoff) {
                        mind.pop_front();
                    }
                    let mx = series[*maxd.front().expect("nonempty")];
                    let mn = series[*mind.front().expect("nonempty")];
                    out.push(match kind {
                        TransformKind::Max => mx,
                        TransformKind::Min => mn,
                        TransformKind::Spread => mx - mn,
                        _ => unreachable!(),
                    });
                }
            }
        }
        TransformKind::Dwt => unreachable!(),
    }
    out
}

/// All true alarm times for a monitored window over a full series:
/// `(window, t)` pairs where the aggregate over `series[t−w+1..=t]` crosses
/// the threshold.
pub fn true_alarm_times(series: &[f64], spec: &WindowSpec, kind: TransformKind) -> Vec<u64> {
    sliding_aggregate(series, spec.window, kind)
        .into_iter()
        .enumerate()
        .filter(|&(_, v)| v >= spec.threshold)
        .map(|(i, _)| (i + spec.window - 1) as u64)
        .collect()
}

/// All subsequence matches of `query` in `data` within normalized distance
/// `radius` (Eq. 2 normalization with `R_max`): end indices.
pub fn subsequence_matches(data: &[f64], query: &[f64], radius: f64, r_max: f64) -> Vec<usize> {
    let len = query.len();
    if len == 0 || data.len() < len {
        return Vec::new();
    }
    let r_abs = radius * (len as f64).sqrt() * r_max;
    let r_sq = r_abs * r_abs;
    let mut out = Vec::new();
    for end in len - 1..data.len() {
        let start = end + 1 - len;
        let mut acc = 0.0;
        let mut pruned = false;
        for (a, b) in data[start..=end].iter().zip(query) {
            acc += (a - b) * (a - b);
            if acc > r_sq {
                pruned = true;
                break;
            }
        }
        if !pruned {
            out.push(end);
        }
    }
    out
}

/// All correlated pairs among the last `w` values of the given streams:
/// `(a, b, corr)` with `corr ≥ 1 − r²/2`.
pub fn correlated_pairs(streams: &[Vec<f64>], w: usize, radius: f64) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for a in 0..streams.len() {
        if streams[a].len() < w {
            continue;
        }
        for b in a + 1..streams.len() {
            if streams[b].len() < w {
                continue;
            }
            let wa = &streams[a][streams[a].len() - w..];
            let wb = &streams[b][streams[b].len() - w..];
            let Some(corr) = normalize::correlation(wa, wb) else { continue };
            if normalize::correlation_to_distance(corr) <= radius {
                out.push((a, b, corr));
            }
        }
    }
    out
}

/// The exhaustive online monitor the paper benchmarks SWT against ("more
/// than ten times faster than the linear scan", §6.1): at every arrival,
/// every monitored window's aggregate is recomputed from the raw data —
/// exact, alarm-free of false positives, and Θ(Σ wᵢ) per item.
pub struct ExhaustiveMonitor {
    kind: TransformKind,
    history: stardust_core::stream::StreamHistory,
    specs: Vec<WindowSpec>,
    stats: stardust_core::query::aggregate::AlarmStats,
    scratch: Vec<f64>,
}

impl ExhaustiveMonitor {
    /// A monitor over the given windows.
    ///
    /// # Panics
    /// Panics if `specs` is empty or the transform is DWT.
    pub fn new(kind: TransformKind, specs: &[WindowSpec]) -> Self {
        assert!(!specs.is_empty(), "need at least one monitored window");
        assert_ne!(kind, TransformKind::Dwt, "DWT has no scalar aggregate");
        let max_w = specs.iter().map(|s| s.window).max().expect("nonempty");
        ExhaustiveMonitor {
            kind,
            history: stardust_core::stream::StreamHistory::new(max_w + 1),
            specs: specs.to_vec(),
            stats: Default::default(),
            scratch: Vec::new(),
        }
    }

    /// Cumulative alarm statistics; precision is 1.0 by construction.
    pub fn stats(&self) -> stardust_core::query::aggregate::AlarmStats {
        self.stats
    }

    /// Appends a value, recomputing every window from raw data; returns
    /// the times-window pairs that alarmed.
    pub fn push(&mut self, value: f64) -> Vec<usize> {
        let t = self.history.push(value);
        let mut fired = Vec::new();
        for spec in &self.specs {
            if t + 1 < spec.window as u64 {
                continue;
            }
            self.stats.checks += 1;
            let ok = self.history.copy_window(t, spec.window, &mut self.scratch);
            debug_assert!(ok);
            let agg = self.kind.scalar_aggregate(&self.scratch).expect("scalar kind");
            if agg >= spec.threshold {
                self.stats.candidates += 1;
                self.stats.true_alarms += 1;
                fired.push(spec.window);
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_monitor_is_exact() {
        let mut data = vec![1.0; 500];
        for v in data.iter_mut().skip(200).take(30) {
            *v = 6.0;
        }
        let specs = [
            WindowSpec { window: 10, threshold: 30.0 },
            WindowSpec { window: 25, threshold: 60.0 },
        ];
        let mut mon = ExhaustiveMonitor::new(TransformKind::Sum, &specs);
        let mut count = 0usize;
        for &x in &data {
            count += mon.push(x).len();
        }
        let mut expect = 0usize;
        for spec in &specs {
            expect += true_alarm_times(&data, spec, TransformKind::Sum).len();
        }
        assert_eq!(count, expect);
        assert_eq!(mon.stats().precision(), 1.0);
        assert!(expect > 0);
    }

    #[test]
    fn sliding_sum_matches_naive() {
        let s: Vec<f64> = (0..50).map(|i| ((i * 17) % 7) as f64).collect();
        let fast = sliding_aggregate(&s, 5, TransformKind::Sum);
        for (i, v) in fast.iter().enumerate() {
            let naive: f64 = s[i..i + 5].iter().sum();
            assert!((v - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn sliding_spread_matches_naive() {
        let s: Vec<f64> = (0..60).map(|i| ((i * 31) % 13) as f64).collect();
        let fast = sliding_aggregate(&s, 7, TransformKind::Spread);
        for (i, v) in fast.iter().enumerate() {
            let win = &s[i..i + 7];
            let naive = win.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - win.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(*v, naive);
        }
    }

    #[test]
    fn short_series_yields_empty() {
        assert!(sliding_aggregate(&[1.0, 2.0], 5, TransformKind::Sum).is_empty());
    }

    #[test]
    fn alarm_times_are_window_ends() {
        let mut s = vec![0.0; 30];
        for v in s.iter_mut().skip(10).take(5) {
            *v = 10.0;
        }
        let spec = WindowSpec { window: 5, threshold: 49.0 };
        let alarms = true_alarm_times(&s, &spec, TransformKind::Sum);
        assert_eq!(alarms, vec![14]); // exactly the all-burst window
    }

    #[test]
    fn subsequence_matches_include_self() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let q = data[10..20].to_vec();
        let m = subsequence_matches(&data, &q, 0.0, 1.0);
        assert!(m.contains(&19));
    }

    #[test]
    fn correlated_pairs_detects_affine_pair() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = a.iter().map(|v| 2.0 * v + 1.0).collect();
        let c: Vec<f64> = (0..32).map(|i| ((i * i) % 17) as f64).collect();
        let pairs = correlated_pairs(&[a, b, c], 32, 0.1);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
    }
}
