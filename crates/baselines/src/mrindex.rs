//! MR-Index — the multi-resolution index of Kahveci & Singh (ICDE 2001),
//! the offline ancestor Stardust extends to streams.
//!
//! MR-Index keeps, per resolution, MBRs over `c` consecutive feature
//! vectors and answers variable-length queries with hierarchical radius
//! refinement — structurally identical to Stardust's online index. The
//! difference (§3) is **maintenance**: MR-Index computes the wavelet
//! transform *from the raw window at every level on every arrival*
//! (Θ(Σ_j W·2^j) per item), where Stardust derives level `j` from level
//! `j−1` in Θ(f). The upside is exactness: MR-Index boxes contain true
//! features rather than merged intervals, so its MBRs are tighter and its
//! precision higher than online Stardust at equal `c` — both effects are
//! visible in Fig. 5 and the maintenance benchmarks.
//!
//! The implementation reuses the core engine with
//! [`ComputeMode::Direct`], which is precisely this maintenance scheme.

use stardust_core::config::{ComputeMode, Config, UpdatePolicy};
use stardust_core::engine::Stardust;
use stardust_core::error::QueryError;
use stardust_core::query::pattern::{self, PatternAnswer, PatternQuery};
use stardust_core::stream::StreamId;

/// An MR-Index over `M` streams: a direct-computation, online-rate,
/// multi-resolution index.
pub struct MrIndex {
    engine: Stardust,
}

impl MrIndex {
    /// Builds an MR-Index with base window `W` (power of two), the given
    /// number of levels, box capacity `c`, `f` Haar coefficients, history
    /// `N`, and value bound `R_max`.
    ///
    /// # Panics
    /// Panics on invalid parameters (see
    /// [`stardust_core::config::Config::validate`]).
    pub fn new(
        base_window: usize,
        levels: usize,
        box_capacity: usize,
        f: usize,
        history: usize,
        r_max: f64,
        n_streams: usize,
    ) -> Self {
        let mut config = Config::batch(base_window, levels, f, r_max).with_history(history);
        config.update = UpdatePolicy::Online;
        config.box_capacity = box_capacity;
        config.compute = ComputeMode::Direct;
        MrIndex { engine: Stardust::new(config, n_streams) }
    }

    /// Appends one value to one stream (recomputing features at every
    /// level — the costly part).
    pub fn append(&mut self, stream: StreamId, value: f64) {
        self.engine.append(stream, value);
    }

    /// Answers a variable-length pattern query with hierarchical radius
    /// refinement (the MR-Index search algorithm, identical to
    /// Algorithm 3).
    pub fn query(&self, q: &PatternQuery) -> Result<PatternAnswer, QueryError> {
        pattern::query_online(&self.engine, q)
    }

    /// The underlying engine (for inspection in tests and benches).
    pub fn engine(&self) -> &Stardust {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_core::query::pattern::linear_scan_matches;
    use stardust_core::{MergePrecision, StreamSummary};

    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn feed(mr: &mut MrIndex, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let m = mr.engine.n_streams();
        let mut seeds: Vec<u64> = (0..m as u64).map(|s| seed ^ (s * 104729)).collect();
        let mut vals: Vec<f64> = seeds.iter_mut().map(|s| splitmix(s) * 100.0).collect();
        let mut data = vec![Vec::new(); m];
        for _ in 0..n {
            for s in 0..m {
                vals[s] += splitmix(&mut seeds[s]) - 0.5;
                mr.append(s as StreamId, vals[s]);
                data[s].push(vals[s]);
            }
        }
        data
    }

    #[test]
    fn query_equals_ground_truth() {
        let mut mr = MrIndex::new(8, 4, 4, 4, 256, 200.0, 2);
        let data = feed(&mut mr, 400, 9);
        let q = PatternQuery { sequence: data[0][360..384].to_vec(), radius: 0.03 };
        let ans = mr.query(&q).expect("valid");
        let truth = linear_scan_matches(mr.engine(), &q);
        let mut got: Vec<_> = ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        let mut want: Vec<_> =
            truth.iter().filter(|m| m.end_time + 1 >= 24).map(|m| (m.stream, m.end_time)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    /// MR-Index boxes are tighter than online Stardust's merged boxes at
    /// equal c: the candidate count can only be lower or equal on the same
    /// data and query.
    #[test]
    fn tighter_boxes_than_incremental_online() {
        use stardust_core::config::{Config, UpdatePolicy};
        let mut mr = MrIndex::new(8, 4, 4, 4, 256, 200.0, 2);
        let mut cfg = Config::batch(8, 4, 4, 200.0).with_history(256);
        cfg.update = UpdatePolicy::Online;
        cfg.box_capacity = 4;
        let mut online = Stardust::new(cfg, 2);
        let data = feed(&mut mr, 400, 31);
        for i in 0..400 {
            for s in 0..2 {
                online.append(s as StreamId, data[s][i]);
            }
        }
        let q = PatternQuery { sequence: data[1][340..372].to_vec(), radius: 0.05 };
        let a_mr = mr.query(&q).expect("valid");
        let a_on = pattern::query_online(&online, &q).expect("valid");
        assert!(
            a_mr.candidates.len() <= a_on.candidates.len(),
            "MR-Index candidates {} > online {}",
            a_mr.candidates.len(),
            a_on.candidates.len()
        );
        // Both find the same true matches.
        let mut m1: Vec<_> = a_mr.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        let mut m2: Vec<_> = a_on.matches.iter().map(|m| (m.stream, m.end_time)).collect();
        m1.sort_unstable();
        m2.sort_unstable();
        assert_eq!(m1, m2);
    }

    /// Per-item maintenance work of direct computation scales with the
    /// total window size — sanity-check the cost model by counting raw
    /// history reads indirectly via timing-free proxy: feature exactness.
    #[test]
    fn direct_features_are_exact_despite_boxes() {
        let mut cfg = Config::batch(8, 3, 4, 1.0).with_history(64);
        cfg.update = UpdatePolicy::Online;
        cfg.box_capacity = 3;
        cfg.compute = ComputeMode::Direct;
        let mut s = StreamSummary::with_precision(cfg, MergePrecision::Fast);
        let data: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.37).sin() * 5.0).collect();
        for &x in &data {
            s.push_quiet(x);
        }
        // The open/sealed boxes contain exact features: each box extent is
        // the hull of true features, so the true feature at the last time
        // must lie on the box boundary or inside.
        let t = 199u64;
        for j in 0..3 {
            let w = 8usize << j;
            let mbr = s.mbr_at(j, t).expect("feature exists");
            let direct = stardust_dsp::haar::approx(&data[200 - w..], 4);
            assert!(mbr.bounds.contains(&direct, 1e-9), "level {j}");
        }
    }
}
