//! GeneralMatch — dual-window subsequence matching (Moon, Whang & Han,
//! SIGMOD 2002), the single-resolution baseline of §6.2.
//!
//! The data stream is divided into **disjoint** windows of a fixed size
//! `w` (chosen from the a-priori minimum query length — the constraint
//! Stardust's multi-resolution index removes); the query is divided into
//! **sliding** windows of the same size. A true match guarantees that at
//! least `p = ⌊(|Q|−w+1)/w⌋` disjoint data windows fall inside it, so for
//! each query sliding window a range query with radius `r/√p` retrieves
//! candidates without false dismissals.

use stardust_core::query::pattern::{PatternAnswer, PatternMatch, PatternQuery};
use stardust_core::stream::{StreamHistory, StreamId, Time};
use stardust_dsp::haar;
use stardust_index::{Params, RStarTree, Rect};

use std::collections::{BTreeSet, VecDeque};

/// Index payload: one disjoint-window feature.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GmEntry {
    stream: StreamId,
    /// Time of the window's last value.
    end: Time,
}

/// A GeneralMatch index over `M` streams.
pub struct GeneralMatch {
    w: usize,
    f: usize,
    r_max: f64,
    history: usize,
    histories: Vec<StreamHistory>,
    tree: RStarTree<GmEntry>,
    /// Per-stream inserted features, oldest first, for retirement.
    inserted: Vec<VecDeque<(Time, Vec<f64>)>>,
}

impl GeneralMatch {
    /// The largest power-of-two disjoint-window size usable for queries of
    /// at least `min_query_len` (`2w − 1 ≤ min_query_len` so that `p ≥ 1`).
    pub fn max_window_for(min_query_len: usize) -> usize {
        let mut w = 1usize;
        while 2 * (w << 1) - 1 <= min_query_len {
            w <<= 1;
        }
        w
    }

    /// An index with disjoint windows of size `w` (a power of two), `f`
    /// Haar coefficients per window, retaining `history` values per
    /// stream.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(w: usize, f: usize, r_max: f64, history: usize, n_streams: usize) -> Self {
        assert!(w.is_power_of_two(), "window must be a power of two for the Haar transform");
        assert!(f.is_power_of_two() && f <= w, "need f ≤ w, both powers of two");
        assert!(r_max > 0.0, "R_max must be positive");
        assert!(history >= w, "history must cover one window");
        assert!(n_streams >= 1, "need at least one stream");
        GeneralMatch {
            w,
            f,
            r_max,
            history,
            histories: (0..n_streams).map(|_| StreamHistory::new(history + 1)).collect(),
            tree: RStarTree::with_params(f, Params::default()),
            inserted: (0..n_streams).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The disjoint-window size.
    pub fn window(&self) -> usize {
        self.w
    }

    /// Number of indexed features.
    pub fn indexed(&self) -> usize {
        self.tree.len()
    }

    /// Appends one value; indexes a new disjoint-window feature every `w`
    /// arrivals and retires features older than the history.
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) {
        let s = stream as usize;
        let t = self.histories[s].push(value);
        if (t + 1).is_multiple_of(self.w as u64) {
            let win = self.histories[s].window(t, self.w).expect("just pushed full window");
            let coeffs = haar::approx(&win, self.f);
            self.tree.insert(Rect::point(&coeffs), GmEntry { stream, end: t });
            self.inserted[s].push_back((t, coeffs));
        }
        // Retire features whose window left the history.
        let horizon = t.saturating_sub(self.history as u64);
        while self.inserted[s].front().is_some_and(|&(end, _)| end < horizon) {
            let (end, coeffs) = self.inserted[s].pop_front().expect("just checked");
            let removed = self.tree.remove(&Rect::point(&coeffs), &GmEntry { stream, end });
            debug_assert!(removed);
        }
    }

    /// Answers a pattern query (normalized-space radius, as in
    /// [`stardust_core::query::pattern`]). Candidates are
    /// (query-offset, data-window) retrievals; matches are verified,
    /// deduplicated end positions.
    ///
    /// # Panics
    /// Panics if the query is shorter than `2w − 1` (violates the
    /// construction-time minimum length contract).
    pub fn query(&self, q: &PatternQuery) -> PatternAnswer {
        let len = q.sequence.len();
        let w = self.w;
        assert!(len >= 2 * w - 1, "query length {len} below the index minimum {}", 2 * w - 1);
        let r_abs = q.radius * (len as f64).sqrt() * self.r_max;
        let p = (len - w + 1) / w;
        let piece_radius = r_abs / (p as f64).sqrt();

        let mut answer = PatternAnswer::default();
        let mut found: BTreeSet<(StreamId, Time)> = BTreeSet::new();
        let mut window = Vec::new();
        // One range query per query sliding window.
        for offset in 0..=len - w {
            let qf = haar::approx(&q.sequence[offset..offset + w], self.f);
            let mut hits: Vec<GmEntry> = Vec::new();
            self.tree.search_within(&qf, piece_radius, |_, entry| {
                hits.push(entry.clone());
            });
            for entry in hits {
                answer.candidates.push((entry.stream, entry.end));
                // Alignment: query[offset..offset+w] ↔ data[end−w+1..=end]
                // ⇒ match ends at end + (len − offset − w).
                let end_time = entry.end + (len - offset - w) as u64;
                let hist = &self.histories[entry.stream as usize];
                let mut hit = false;
                if found.contains(&(entry.stream, end_time)) {
                    hit = true;
                } else if hist.copy_window(end_time, len, &mut window) {
                    let d: f64 = window
                        .iter()
                        .zip(&q.sequence)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    if d <= r_abs {
                        hit = true;
                        found.insert((entry.stream, end_time));
                        answer.matches.push(PatternMatch {
                            stream: entry.stream,
                            end_time,
                            distance: d / ((len as f64).sqrt() * self.r_max),
                        });
                    }
                }
                if hit {
                    answer.relevant += 1;
                }
            }
        }
        answer
    }

    /// Ground-truth matches by linear scan (for tests).
    pub fn linear_scan(&self, q: &PatternQuery) -> Vec<(StreamId, Time)> {
        let len = q.sequence.len();
        let r_abs = q.radius * (len as f64).sqrt() * self.r_max;
        let mut out = Vec::new();
        let mut window = Vec::new();
        for (s, hist) in self.histories.iter().enumerate() {
            let Some(now) = hist.latest_time() else { continue };
            for te in hist.oldest_time() + len as u64 - 1..=now {
                if !hist.copy_window(te, len, &mut window) {
                    continue;
                }
                let d: f64 = window
                    .iter()
                    .zip(&q.sequence)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d <= r_abs {
                    out.push((s as StreamId, te));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn feed(gm: &mut GeneralMatch, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let m = gm.histories.len();
        let mut seeds: Vec<u64> = (0..m as u64).map(|s| seed ^ (s * 7919)).collect();
        let mut vals: Vec<f64> = seeds.iter_mut().map(|s| splitmix(s) * 100.0).collect();
        let mut data = vec![Vec::new(); m];
        for _ in 0..n {
            for s in 0..m {
                vals[s] += splitmix(&mut seeds[s]) - 0.5;
                gm.append(s as StreamId, vals[s]);
                data[s].push(vals[s]);
            }
        }
        data
    }

    #[test]
    fn max_window_for_respects_constraint() {
        for min_len in [15usize, 16, 31, 32, 100] {
            let w = GeneralMatch::max_window_for(min_len);
            assert!(2 * w - 1 <= min_len, "min_len={min_len} w={w}");
            assert!(2 * (w * 2) - 1 > min_len, "w not maximal for {min_len}");
        }
    }

    #[test]
    fn finds_planted_subsequence() {
        let mut gm = GeneralMatch::new(8, 4, 200.0, 256, 2);
        let data = feed(&mut gm, 300, 3);
        let q = PatternQuery { sequence: data[1][270..294].to_vec(), radius: 0.01 };
        let ans = gm.query(&q);
        assert!(ans.matches.iter().any(|m| m.stream == 1 && m.end_time == 293));
    }

    #[test]
    fn no_false_dismissals() {
        let mut gm = GeneralMatch::new(8, 4, 200.0, 256, 3);
        let data = feed(&mut gm, 400, 11);
        for &(len, r) in &[(24usize, 0.03), (33, 0.05)] {
            let q = PatternQuery { sequence: data[0][360 - len..360].to_vec(), radius: r };
            let ans = gm.query(&q);
            let truth = gm.linear_scan(&q);
            let got: BTreeSet<(StreamId, Time)> =
                ans.matches.iter().map(|m| (m.stream, m.end_time)).collect();
            for pos in &truth {
                assert!(got.contains(pos), "len={len}: {pos:?} dismissed");
            }
            assert_eq!(got.len(), truth.len(), "reported non-matches");
        }
    }

    #[test]
    fn retirement_bounds_index_size() {
        let mut gm = GeneralMatch::new(8, 4, 200.0, 64, 1);
        feed(&mut gm, 2000, 5);
        // 64 / 8 = 8 live windows, plus the one at the boundary.
        assert!(gm.indexed() <= 10, "indexed {}", gm.indexed());
    }

    #[test]
    fn precision_within_unit_interval() {
        let mut gm = GeneralMatch::new(8, 2, 200.0, 256, 2);
        let data = feed(&mut gm, 300, 21);
        let q = PatternQuery { sequence: data[0][250..282].to_vec(), radius: 0.08 };
        let ans = gm.query(&q);
        let p = ans.precision();
        assert!((0.0..=1.0).contains(&p), "precision {p}");
    }

    #[test]
    #[should_panic(expected = "below the index minimum")]
    fn short_query_rejected() {
        let gm = GeneralMatch::new(8, 4, 1.0, 64, 1);
        let q = PatternQuery { sequence: vec![0.0; 10], radius: 0.1 };
        let _ = gm.query(&q);
    }
}
