//! Published baselines the Stardust paper (§3, §6) compares against,
//! implemented from scratch:
//!
//! * [`swt`] — Shifted Wavelet Tree elastic burst detection (Zhu & Shasha,
//!   KDD 2003); the Fig. 4 comparator.
//! * [`statstream`] — grid-based DFT correlation monitoring (Zhu & Shasha,
//!   VLDB 2002); the Table 1 / Fig. 6 comparator.
//! * [`generalmatch`] — dual-window subsequence matching (Moon, Whang &
//!   Han, SIGMOD 2002); a Fig. 5 comparator.
//! * [`mrindex`] — the multi-resolution index of Kahveci & Singh (ICDE
//!   2001) run in its streaming (recompute-per-arrival) form; the other
//!   Fig. 5 comparator.
//! * [`linear_scan`] — exhaustive ground truth for all three query
//!   classes.

pub mod generalmatch;
pub mod linear_scan;
pub mod mrindex;
pub mod statstream;
pub mod swt;

pub use generalmatch::GeneralMatch;
pub use linear_scan::ExhaustiveMonitor;
pub use mrindex::MrIndex;
pub use statstream::StatStream;
pub use swt::{SwtAlarm, SwtMonitor};
