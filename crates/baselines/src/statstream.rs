//! StatStream — grid-based correlation monitoring (Zhu & Shasha, VLDB
//! 2002), the baseline of §6.3.
//!
//! Each stream's sliding window is summarized by the first DFT
//! coefficients of its z-normalized window, maintained over *basic
//! windows* (batch updates, Θ(f) per item). An orthogonal regular grid
//! with cells of diameter equal to the correlation threshold `r` is
//! superimposed on the feature space; a stream reports candidate partners
//! from its own and neighboring cells. Detecting correlations at a
//! threshold `b·r` forces scanning `(2b+1)^f − 1` neighbor cells — the
//! volume blowup Stardust's R\*-tree range query avoids, and the mechanism
//! behind the Table 1 crossover.

use std::collections::HashMap;

use stardust_core::normalize;
use stardust_core::query::correlation::{CorrelatedPair, CorrelationStats};
use stardust_core::stream::{StreamHistory, StreamId, Time};
use stardust_dsp::dft::SlidingDft;

struct Current {
    cell: Vec<i64>,
    coords: Vec<f64>,
    time: Time,
}

/// A StatStream correlation monitor over `M` synchronized streams.
///
/// As in the original system (and the paper's §6.3 comparison), reported
/// pairs are **approximate**: the filter is grid proximity plus DFT
/// feature distance; raw-window verification is optional and only feeds
/// the precision counters.
pub struct StatStream {
    dfts: Vec<SlidingDft>,
    histories: Vec<StreamHistory>,
    grid: HashMap<Vec<i64>, Vec<StreamId>>,
    current: Vec<Option<Current>>,
    cell_size: f64,
    radius: f64,
    window: usize,
    f: usize,
    verify: bool,
    stats: CorrelationStats,
}

impl StatStream {
    /// A monitor over windows of `basic · n_basic` values with `f` real
    /// DFT feature dimensions, grid cell diameter `cell_size`, and z-norm
    /// distance threshold `radius`.
    ///
    /// # Panics
    /// Panics on non-positive parameters, odd `f`, or fewer than two
    /// streams.
    pub fn new(
        basic: usize,
        n_basic: usize,
        f: usize,
        cell_size: f64,
        radius: f64,
        n_streams: usize,
    ) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(radius.is_finite() && radius >= 0.0, "radius must be finite and nonnegative");
        assert!(n_streams >= 2, "correlation needs at least two streams");
        let window = basic * n_basic;
        StatStream {
            dfts: (0..n_streams).map(|_| SlidingDft::new(basic, n_basic, f)).collect(),
            histories: (0..n_streams).map(|_| StreamHistory::new(window + 1)).collect(),
            grid: HashMap::new(),
            current: (0..n_streams).map(|_| None).collect(),
            cell_size,
            radius,
            window,
            f,
            verify: true,
            stats: CorrelationStats::default(),
        }
    }

    /// Enables or disables inline raw-window verification (disable for
    /// timing runs; reported pairs then carry `correlation: None`).
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.dfts.len()
    }

    /// The correlation window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Cumulative candidate/true-pair counters.
    pub fn stats(&self) -> CorrelationStats {
        self.stats
    }

    fn cell_of(&self, coords: &[f64]) -> Vec<i64> {
        coords.iter().map(|c| (c / self.cell_size).floor() as i64).collect()
    }

    /// Appends one value to one stream; returns the verified correlated
    /// pairs discovered by this arrival. Streams must be appended
    /// round-robin, like [`stardust_core::query::correlation::CorrelationMonitor`].
    ///
    /// # Panics
    /// Panics if the stream id is out of range.
    pub fn append(&mut self, stream: StreamId, value: f64) -> Vec<CorrelatedPair> {
        let s = stream as usize;
        let t = self.histories[s].push(value);
        let Some(feature) = self.dfts[s].push(value) else {
            return Vec::new();
        };
        // Drop the stream's previous grid placement.
        if let Some(prev) = self.current[s].take() {
            if let Some(members) = self.grid.get_mut(&prev.cell) {
                members.retain(|&m| m != stream);
                if members.is_empty() {
                    self.grid.remove(&prev.cell);
                }
            }
        }
        let Some(coords) = feature.coords else {
            // Zero-variance window: no feature, no reports.
            return Vec::new();
        };
        let cell = self.cell_of(&coords);

        // Scan the (2b+1)^f neighborhood; report same-time streams whose
        // feature distance is within the threshold.
        let b = (self.radius / self.cell_size).ceil() as i64;
        let mut reported: Vec<(StreamId, f64)> = Vec::new();
        let mut neighbor = cell.clone();
        scan_neighbors(&self.grid, &cell, &mut neighbor, 0, b, &mut |members| {
            for &other in members {
                let Some(cur) = self.current[other as usize].as_ref() else { continue };
                if other == stream || cur.time != t {
                    continue;
                }
                let d: f64 = cur
                    .coords
                    .iter()
                    .zip(&coords)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                if d <= self.radius {
                    reported.push((other, d));
                }
            }
        });

        self.grid.entry(cell.clone()).or_default().push(stream);
        self.current[s] = Some(Current { cell, coords, time: t });

        let mut pairs = Vec::with_capacity(reported.len());
        for (other, feature_distance) in reported {
            self.stats.reported += 1;
            let correlation = if self.verify {
                let win_a =
                    self.histories[s].window(t, self.window).expect("feature implies full window");
                let win_b = self.histories[other as usize]
                    .window(t, self.window)
                    .expect("same-time feature implies full window");
                let corr = normalize::correlation(&win_a, &win_b);
                if corr.is_some_and(|c| normalize::correlation_to_distance(c) <= self.radius) {
                    self.stats.true_pairs += 1;
                }
                corr
            } else {
                None
            };
            pairs.push(CorrelatedPair {
                a: stream,
                b: other,
                time: t,
                time_other: t,
                feature_distance,
                correlation,
            });
        }
        pairs
    }

    /// Feature dimensionality.
    pub fn feature_dims(&self) -> usize {
        self.f
    }
}

/// Recursively enumerates all cells within `±b` of `center` per dimension,
/// invoking `visit` on each occupied cell's member list.
fn scan_neighbors<'g>(
    grid: &'g HashMap<Vec<i64>, Vec<StreamId>>,
    center: &[i64],
    scratch: &mut Vec<i64>,
    dim: usize,
    b: i64,
    visit: &mut impl FnMut(&'g [StreamId]),
) {
    if dim == center.len() {
        if let Some(members) = grid.get(scratch) {
            visit(members);
        }
        return;
    }
    for d in -b..=b {
        scratch[dim] = center[dim] + d;
        scan_neighbors(grid, center, scratch, dim + 1, b, visit);
    }
    scratch[dim] = center[dim];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn feed(mon: &mut StatStream, n: usize) -> Vec<CorrelatedPair> {
        let mut s1 = 42u64;
        let mut s2 = 4242u64;
        let (mut a, mut c) = (50.0f64, 50.0f64);
        let mut all = Vec::new();
        for i in 0..n {
            a += splitmix(&mut s1) - 0.5;
            c += splitmix(&mut s2) - 0.5;
            let b = a + 0.01 * ((i % 7) as f64 - 3.0);
            all.extend(mon.append(0, a));
            all.extend(mon.append(1, b));
            all.extend(mon.append(2, c));
        }
        all
    }

    #[test]
    fn detects_planted_correlation() {
        let mut mon = StatStream::new(8, 4, 2, 0.1, 0.2, 3);
        let pairs = feed(&mut mon, 300);
        let confirmed: Vec<_> = pairs
            .iter()
            .filter(|p| p.correlation.is_some_and(|c| normalize::correlation_to_distance(c) <= 0.2))
            .collect();
        assert!(!confirmed.is_empty(), "correlated pair never confirmed");
        assert!(confirmed.iter().all(|p| (p.a.min(p.b), p.a.max(p.b)) == (0, 1)));
    }

    #[test]
    fn grid_membership_is_exact() {
        let mut mon = StatStream::new(4, 4, 2, 0.5, 0.5, 3);
        feed(&mut mon, 200);
        // Every stream appears in exactly one cell (or none pre-warm-up).
        let mut seen = [0usize; 3];
        for members in mon.grid.values() {
            for &m in members {
                seen[m as usize] += 1;
            }
        }
        for (s, count) in seen.iter().enumerate() {
            assert!(*count <= 1, "stream {s} in {count} cells");
        }
    }

    #[test]
    fn larger_threshold_reports_more_pairs() {
        let mut small = StatStream::new(8, 4, 2, 0.1, 0.1, 3);
        let mut large = StatStream::new(8, 4, 2, 0.1, 1.2, 3);
        feed(&mut small, 400);
        feed(&mut large, 400);
        assert!(
            large.stats().reported >= small.stats().reported,
            "reports should grow with the threshold"
        );
    }

    #[test]
    fn reported_pairs_carry_feature_distance_within_radius() {
        let mut mon = StatStream::new(8, 4, 2, 0.1, 0.3, 3);
        let pairs = feed(&mut mon, 400);
        for p in &pairs {
            assert!(p.feature_distance <= 0.3 + 1e-9);
            assert!(p.correlation.is_some(), "verification on by default");
        }
        let st = mon.stats();
        assert!(st.true_pairs <= st.reported);
    }

    #[test]
    fn unverified_mode_skips_correlation() {
        let mut mon = StatStream::new(8, 4, 2, 0.1, 0.3, 3).with_verification(false);
        let pairs = feed(&mut mon, 400);
        assert!(pairs.iter().all(|p| p.correlation.is_none()));
        assert_eq!(mon.stats().true_pairs, 0);
    }

    #[test]
    fn no_false_dismissals_against_bruteforce() {
        // Whenever both streams have a same-time feature, every truly
        // correlated pair must be reported (DFT feature distance
        // lower-bounds z-norm distance, so the grid scan is conservative).
        let mut mon = StatStream::new(4, 4, 2, 0.2, 0.6, 3);
        let mut s1 = 7u64;
        let mut s2 = 77u64;
        let (mut a, mut c) = (50.0f64, 50.0f64);
        for i in 0..240u64 {
            a += splitmix(&mut s1) - 0.5;
            c += splitmix(&mut s2) - 0.5;
            let b = a + 0.02 * ((i % 5) as f64 - 2.0);
            let mut batch = Vec::new();
            batch.extend(mon.append(0, a));
            batch.extend(mon.append(1, b));
            batch.extend(mon.append(2, c));
            if (i + 1) % 4 != 0 || (i + 1) < 16 {
                continue;
            }
            // Brute force over the three windows.
            let wins: Vec<Vec<f64>> =
                (0..3).map(|s| mon.histories[s].window(i, 16).expect("in history")).collect();
            for x in 0..3usize {
                for y in x + 1..3 {
                    let Some(corr) = normalize::correlation(&wins[x], &wins[y]) else {
                        continue;
                    };
                    if normalize::correlation_to_distance(corr) <= 0.6 {
                        assert!(
                            batch
                                .iter()
                                .any(|p| (p.a.min(p.b), p.a.max(p.b)) == (x as u32, y as u32)),
                            "t={i}: pair ({x},{y}) corr={corr} dismissed"
                        );
                    }
                }
            }
        }
    }
}
