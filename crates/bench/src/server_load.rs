//! Load driver for the `stardust serve` network layer: N concurrent
//! clients × sustained append throughput × tail latency, with an
//! optional self-audit proving zero lost or duplicated events.
//!
//! Two modes:
//!
//! * **self-hosted** — starts an in-process [`Server`] on
//!   `127.0.0.1:0`, runs the fleet, then replays the identical workload
//!   through a direct [`ShardedRuntime`] and requires *bit-identical*
//!   event sets (the equality audit from the persistence tests, applied
//!   across the socket). This is what CI and `--emit-bench` run.
//! * **remote** — points the same fleet at an externally started
//!   `stardust serve` (no audit: the remote event set is not
//!   observable).
//!
//! Each client owns one disjoint stream, so aggregate/trend events are
//! invariant to client interleaving and the audit is exact (see
//! DESIGN.md §Network service for why correlation is excluded).

use std::sync::Mutex;
use std::time::Instant;

use stardust_core::query::aggregate::WindowSpec;
use stardust_core::transform::TransformKind;
use stardust_datagen::random_walk::{observed_r_max, random_walk_streams};
use stardust_runtime::{
    sort_events, AggregateSpec, Batch, MonitorSpec, RuntimeConfig, ShardedRuntime, TrendPattern,
    TrendSpec,
};
use stardust_server::{Client, Server, ServerConfig, TenantConfig};
use stardust_telemetry::{Histogram, Registry};

/// Load-driver parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections (one disjoint stream each).
    pub clients: usize,
    /// Values each client appends.
    pub values_per_client: usize,
    /// Values per append request.
    pub batch: usize,
    /// Append frames kept in flight per round trip (pipelining depth;
    /// 1 = the pre-group-commit request/reply lockstep).
    pub pipeline: usize,
    /// Runtime worker shards (0 = one per CPU).
    pub shards: usize,
    /// Per-shard queue capacity in batches.
    pub queue_capacity: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 32,
            values_per_client: 4_096,
            batch: 64,
            pipeline: 8,
            shards: 0,
            queue_capacity: 256,
            seed: 42,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Concurrent clients sustained.
    pub clients: usize,
    /// Total values admitted across all clients.
    pub values: u64,
    /// Wall-clock of the append phase, seconds.
    pub elapsed_s: f64,
    /// `values / elapsed_s`.
    pub throughput_values_per_s: f64,
    /// Median append round trip (request write → last reply decoded,
    /// including any Busy retry waits inside the round), nanoseconds.
    pub append_p50_ns: u64,
    /// 95th percentile round-trip, ns.
    pub append_p95_ns: u64,
    /// 99th percentile round-trip, ns.
    pub append_p99_ns: u64,
    /// `Busy` replies absorbed fleet-wide (backpressure observed).
    pub busy_replies: u64,
    /// Append-rate quota waits absorbed fleet-wide.
    pub rate_waits: u64,
    /// Event-set equality audit: `None` in remote mode, otherwise
    /// whether the socket run matched the direct run bit-for-bit.
    pub audit_ok: Option<bool>,
    /// Events observed in the audit (socket side).
    pub audit_events: u64,
}

const BASE_WINDOW: usize = 16;
const LEVELS: usize = 3;
const TOKEN: &str = "bench-token";

/// Aggregate + trend spec whose thresholds the seeded workload crosses,
/// so the audit compares non-empty event sets.
fn spec_for(streams: &[Vec<f64>]) -> MonitorSpec {
    let r_max = observed_r_max(streams);
    let window = 2 * BASE_WINDOW;
    let max_sum = streams
        .iter()
        .flat_map(|s| s.windows(window).map(|w| w.iter().sum::<f64>()))
        .fold(f64::MIN, f64::max);
    let pattern: Vec<f64> = streams[0][8..8 + window].to_vec();
    MonitorSpec::new(BASE_WINDOW, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window, threshold: max_sum * 0.98 }],
            box_capacity: 4,
        })
        .with_trends(TrendSpec {
            coeffs: 4,
            box_capacity: 4,
            patterns: vec![TrendPattern { sequence: pattern, radius: 0.05 }],
        })
}

/// Runs the client fleet against `addr`; returns (admitted values,
/// busy replies, rate waits) with latencies recorded into `lat`.
fn run_fleet(
    addr: std::net::SocketAddr,
    token: &str,
    streams: &[Vec<f64>],
    batch: usize,
    pipeline: usize,
    lat: &Histogram,
) -> (u64, u64, u64) {
    let pipeline = pipeline.max(1);
    let totals = Mutex::new((0u64, 0u64, 0u64));
    std::thread::scope(|scope| {
        for (g, s) in streams.iter().enumerate() {
            let totals = &totals;
            scope.spawn(move || {
                let (mut client, _) = Client::connect(addr, token)
                    .unwrap_or_else(|e| panic!("client {g} failed to connect: {e}"));
                let mut appended = 0u64;
                let mut busy = 0u64;
                let mut waits = 0u64;
                // Each round trip pipelines up to `pipeline` append
                // frames; the server admits the run as one try_submit
                // group and replies to each frame.
                for window in s.chunks(batch * pipeline) {
                    let batches: Vec<Vec<(u32, f64)>> = window
                        .chunks(batch)
                        .map(|chunk| chunk.iter().map(|&v| (g as u32, v)).collect())
                        .collect();
                    let span = lat.span();
                    let stats = client
                        .append_group_all(&batches)
                        .unwrap_or_else(|e| panic!("client {g} append failed: {e}"));
                    drop(span);
                    appended += window.len() as u64;
                    busy += stats.busy_replies;
                    waits += stats.rate_waits;
                }
                client.goodbye().unwrap_or_else(|e| panic!("client {g} goodbye failed: {e}"));
                let mut t = totals.lock().unwrap();
                t.0 += appended;
                t.1 += busy;
                t.2 += waits;
            });
        }
    });
    totals.into_inner().unwrap()
}

fn percentiles(lat: &Histogram) -> (u64, u64, u64) {
    (
        lat.quantile(0.50).unwrap_or(0),
        lat.quantile(0.95).unwrap_or(0),
        lat.quantile(0.99).unwrap_or(0),
    )
}

/// Self-hosted run: in-process server, fleet, then the equality audit
/// against a direct runtime executing the identical workload.
pub fn run_self_hosted(cfg: &LoadConfig) -> LoadResult {
    let streams = random_walk_streams(cfg.seed, cfg.clients, cfg.values_per_client);
    let spec = spec_for(&streams);
    let runtime_config = RuntimeConfig {
        shards: cfg.shards,
        queue_capacity: cfg.queue_capacity,
        ..RuntimeConfig::default()
    };

    let rt =
        ShardedRuntime::launch(&spec, cfg.clients, runtime_config.clone()).expect("launch runtime");
    let tenants = vec![TenantConfig {
        name: "bench".into(),
        token: TOKEN.into(),
        streams: cfg.clients as u32,
        append_rate: 0,
    }];
    let server = Server::start(
        "127.0.0.1:0",
        rt,
        tenants,
        ServerConfig { max_connections: cfg.clients + 8, ..ServerConfig::default() },
        Registry::new(),
    )
    .expect("start server");

    let lat = Histogram::standalone(stardust_telemetry::duration_buckets_ns());
    let start = Instant::now();
    let (values, busy_replies, rate_waits) =
        run_fleet(server.local_addr(), TOKEN, &streams, cfg.batch, cfg.pipeline, &lat);
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut socket_events = server.shutdown().events;

    // Audit: identical workload straight into a fresh runtime.
    let rt = ShardedRuntime::launch(&spec, cfg.clients, runtime_config).expect("audit runtime");
    for (g, s) in streams.iter().enumerate() {
        for chunk in s.chunks(cfg.batch) {
            let batch: Batch = chunk.iter().map(|&v| (g as u32, v)).collect();
            rt.submit_blocking(&batch).expect("audit submit");
        }
    }
    let mut direct_events = rt.shutdown().events;
    sort_events(&mut socket_events);
    sort_events(&mut direct_events);
    let audit_ok = socket_events == direct_events && !socket_events.is_empty();

    let (append_p50_ns, append_p95_ns, append_p99_ns) = percentiles(&lat);
    LoadResult {
        clients: cfg.clients,
        values,
        elapsed_s,
        throughput_values_per_s: values as f64 / elapsed_s,
        append_p50_ns,
        append_p95_ns,
        append_p99_ns,
        busy_replies,
        rate_waits,
        audit_ok: Some(audit_ok),
        audit_events: socket_events.len() as u64,
    }
}

/// Remote run: same fleet against an already-listening server. No
/// audit (the remote event set is not observable from here).
pub fn run_remote(addr: &str, token: &str, cfg: &LoadConfig) -> LoadResult {
    let streams = random_walk_streams(cfg.seed, cfg.clients, cfg.values_per_client);
    let addr: std::net::SocketAddr =
        addr.parse().unwrap_or_else(|e| panic!("bad --addr '{addr}': {e}"));
    let lat = Histogram::standalone(stardust_telemetry::duration_buckets_ns());
    let start = Instant::now();
    let (values, busy_replies, rate_waits) =
        run_fleet(addr, token, &streams, cfg.batch, cfg.pipeline, &lat);
    let elapsed_s = start.elapsed().as_secs_f64();
    let (append_p50_ns, append_p95_ns, append_p99_ns) = percentiles(&lat);
    LoadResult {
        clients: cfg.clients,
        values,
        elapsed_s,
        throughput_values_per_s: values as f64 / elapsed_s,
        append_p50_ns,
        append_p95_ns,
        append_p99_ns,
        busy_replies,
        rate_waits,
        audit_ok: None,
        audit_events: 0,
    }
}
