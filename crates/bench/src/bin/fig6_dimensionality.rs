//! **Figure 6** — effect of feature dimensionality on correlation
//! monitoring.
//!
//! N = 1024, W = 64, M = 1000 synthetic streams of 2048 points, StatStream
//! cell diameter 0.1 at f = 2. For f ∈ {2, 4, 8, 16} (Stardust) the
//! average precision (a) and total detection time (b) are reported for a
//! sweep of correlation thresholds.
//!
//! Shape to reproduce: Stardust's precision rises and its detection time
//! falls as f grows (tighter filters admit fewer false pairs); Stardust
//! overtakes StatStream at the larger thresholds.
//!
//! Run: `cargo run --release -p stardust-bench --bin fig6_dimensionality [--full]`
//! (default M = 250; `--full` uses the paper's 1000).

use stardust_baselines::StatStream;
use stardust_bench::{f3, full_scale, seed_arg, timed, Table};
use stardust_core::query::correlation::CorrelationMonitor;
use stardust_core::StreamId;
use stardust_datagen::random_walk_streams;

const W: usize = 64;
const LEVELS: usize = 5; // N = 64·2^4 = 1024
const N: usize = 1024;
const POINTS: usize = 2048;
const CELL: f64 = 0.1;

fn main() {
    let seed = seed_arg();
    let m = if full_scale() { 1000 } else { 250 };
    let radii = [0.25, 0.5, 0.75, 1.0];
    let dims = [2usize, 4, 8, 16];
    println!(
        "# Fig 6: dimensionality effect on correlation detection; N={N}, W={W}, M={m}, {POINTS} pts/stream, cell={CELL}, seed {seed}"
    );
    let data = random_walk_streams(seed, m, POINTS);
    let mut table = Table::new(&["technique", "r", "precision", "reported", "true", "time_ms"]);

    // Detection time includes candidate verification (the paper's
    // "correlation detection time" covers the full reporting pipeline,
    // which is why it *drops* as f tightens the filter).
    for &f in &dims {
        for &r in &radii {
            let mut mon = CorrelationMonitor::new(W, LEVELS, f, r, m);
            let (_, ms) = timed(|| {
                for i in 0..POINTS {
                    for (s, stream) in data.iter().enumerate() {
                        mon.append(s as StreamId, stream[i]);
                    }
                }
            });
            let st = mon.stats();
            table.row(&[
                format!("stardust(f={f})"),
                format!("{r}"),
                f3(st.precision()),
                st.reported.to_string(),
                st.true_pairs.to_string(),
                format!("{ms:.0}"),
            ]);
        }
    }
    for &r in &radii {
        let mut mon = StatStream::new(W, N / W, 2, CELL, r, m);
        let (_, ms) = timed(|| {
            for i in 0..POINTS {
                for (s, stream) in data.iter().enumerate() {
                    mon.append(s as StreamId, stream[i]);
                }
            }
        });
        let st = mon.stats();
        table.row(&[
            "statstream(f=2)".to_string(),
            format!("{r}"),
            f3(st.precision()),
            st.reported.to_string(),
            st.true_pairs.to_string(),
            format!("{ms:.0}"),
        ]);
    }
    table.print();
}
