//! **Table 1** — total time (ms) spent on correlation detection for an
//! increasing number of streams.
//!
//! N = 256, W = 16, f = 2, StatStream cell diameter 0.01, M ∈ {256 … 8192},
//! distance thresholds r ∈ {0.01, 0.02, 0.04, 0.08}. Monitors are first
//! warmed with one full window, then 256 synchronized arrivals per stream
//! are observed (16 detection rounds); the total wall-clock time covers
//! summary maintenance plus correlation detection, as in §6.3.1. Reporting
//! is approximate (feature-space filtering, no raw verification), matching
//! both original systems.
//!
//! Shape to reproduce: StatStream's time explodes as r grows past the cell
//! size (the `(2b+1)^f` neighbor-cell blowup plus dense candidate lists)
//! while Stardust's R\*-tree range queries degrade gracefully — Stardust
//! wins by growing factors at the larger thresholds.
//!
//! Run: `cargo run --release -p stardust-bench --bin table1_correlation [--full]`
//! (default M up to 2048; `--full` runs the paper's 8192).

use stardust_baselines::StatStream;
use stardust_bench::{full_scale, seed_arg, timed, Table};
use stardust_core::query::correlation::CorrelationMonitor;
use stardust_core::StreamId;
use stardust_datagen::random_walk_streams;

const W: usize = 16;
const LEVELS: usize = 5; // N = 16·2^4 = 256
const N: usize = 256;
const F: usize = 2;
const ARRIVALS: usize = 256;
const CELL: f64 = 0.01;

fn main() {
    let seed = seed_arg();
    let stream_counts: &[usize] =
        if full_scale() { &[256, 512, 1024, 2048, 4096, 8192] } else { &[256, 512, 1024, 2048] };
    let radii = [0.01, 0.02, 0.04, 0.08];
    println!(
        "# Table 1: correlation detection total time (ms); N={N}, W={W}, f={F}, cell={CELL}, warm-up + {ARRIVALS} arrivals, seed {seed}"
    );
    let mut table = Table::new(&[
        "streams",
        "r",
        "statstream_ms",
        "stardust_ms",
        "speedup",
        "ss_pairs",
        "sd_pairs",
    ]);
    for &m in stream_counts {
        let data = random_walk_streams(seed, m, N + ARRIVALS);
        for &r in &radii {
            let mut ss = StatStream::new(W, N / W, F, CELL, r, m).with_verification(false);
            let mut sd = CorrelationMonitor::new(W, LEVELS, F, r, m).with_verification(false);
            // Warm-up: fill one full window (not timed).
            for i in 0..N {
                for (s, stream) in data.iter().enumerate() {
                    ss.append(s as StreamId, stream[i]);
                    sd.append(s as StreamId, stream[i]);
                }
            }
            let (ss_pairs, ss_ms) = timed(|| {
                let mut pairs = 0u64;
                for i in N..N + ARRIVALS {
                    for (s, stream) in data.iter().enumerate() {
                        pairs += ss.append(s as StreamId, stream[i]).len() as u64;
                    }
                }
                pairs
            });
            let (sd_pairs, sd_ms) = timed(|| {
                let mut pairs = 0u64;
                for i in N..N + ARRIVALS {
                    for (s, stream) in data.iter().enumerate() {
                        pairs += sd.append(s as StreamId, stream[i]).len() as u64;
                    }
                }
                pairs
            });
            table.row(&[
                m.to_string(),
                format!("{r}"),
                format!("{ss_ms:.0}"),
                format!("{sd_ms:.0}"),
                format!("{:.2}", ss_ms / sd_ms),
                ss_pairs.to_string(),
                sd_pairs.to_string(),
            ]);
        }
    }
    table.print();
}
