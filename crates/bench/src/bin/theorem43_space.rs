//! **Theorem 4.3 ablation** — measured summary space vs. the paper's
//! Θ(2^{j−1}·W / (c·T_{j−1})) prediction, across box capacities and
//! update policies.
//!
//! The summarizer retains, at level `j−1`, the MBRs needed to compute
//! level `j` incrementally plus everything within the history of interest
//! `N`; with history = largest window this is ≈ N/(c·T) boxes per level.
//! This binary feeds a long stream and prints measured retained MBRs per
//! level against the prediction, for the online, batch, and SWAT
//! schedules.
//!
//! Run: `cargo run --release -p stardust-bench --bin theorem43_space`

use stardust_bench::{seed_arg, Table};
use stardust_core::config::{Config, UpdatePolicy};
use stardust_core::transform::TransformKind;
use stardust_core::StreamSummary;
use stardust_datagen::random_walk;

const W: usize = 16;
const LEVELS: usize = 5;

fn main() {
    let seed = seed_arg();
    let n = 50_000;
    let data = random_walk(seed, n);
    let history = W << (LEVELS - 1); // N = largest window = 256
    println!(
        "# Theorem 4.3: retained MBRs vs prediction N/(c·T) per level; W={W}, J={}, N={history}, {n} arrivals",
        LEVELS - 1
    );
    let mut table = Table::new(&["policy", "c", "measured_total", "predicted_total", "ratio"]);
    for (policy, name) in [
        (UpdatePolicy::Online, "online"),
        (UpdatePolicy::Batch, "batch"),
        (UpdatePolicy::Swat, "swat"),
    ] {
        for &c in &[1usize, 4, 16, 64] {
            if policy != UpdatePolicy::Online && c != 1 {
                continue; // the paper pairs batch-style schedules with c = 1
            }
            let mut cfg = Config::online(TransformKind::Dwt, W, LEVELS, c).with_history(history);
            cfg.update = policy;
            cfg.dwt_coeffs = 4;
            let mut summary = StreamSummary::new(cfg.clone());
            for &x in &data {
                summary.push_quiet(x);
            }
            let measured = summary.retained_mbrs();
            let predicted: f64 = (0..LEVELS)
                .map(|j| {
                    let t = cfg.update.period(j, W) as f64;
                    history as f64 / (c as f64 * t)
                })
                .sum();
            table.row(&[
                name.to_string(),
                c.to_string(),
                measured.to_string(),
                format!("{predicted:.0}"),
                format!("{:.2}", measured as f64 / predicted),
            ]);
        }
    }
    table.print();
    println!("# ratio ≈ 1 validates the Θ(2^(j−1)·W/(c·T)) space accounting");
}
