//! **Figure 5** — average pattern-query precision on the Host Load
//! dataset (substitute).
//!
//! N = 1024, W = 64, M = 25 streams, c = 64, f = 2, 3K arrivals per
//! stream. A workload of variable-length queries (lengths 192 … 1024,
//! multiples of 64) is answered by four techniques:
//!
//! * Stardust **online** (T = 1, c = 64 — approximate merged boxes),
//! * Stardust **batch** (T = W, c = 1),
//! * **MR-Index** (T = 1, c = 64, direct per-level computation),
//! * **GeneralMatch** (single-resolution disjoint windows).
//!
//! Queries are noisy subsequences of the streams (the paper draws
//! random-walk queries; we perturb real subsequences so every selectivity
//! bin is populated — documented in EXPERIMENTS.md). Precision is averaged
//! per radius; the radius sweep spans low → high selectivity.
//!
//! Shape to reproduce: online is worst; batch dominates at low
//! selectivity; GeneralMatch closes the gap (and can win marginally) at
//! high selectivity.
//!
//! Run: `cargo run --release -p stardust-bench --bin fig5_pattern [--full]`

use rand::prelude::*;
use rand::rngs::StdRng;
use stardust_baselines::{GeneralMatch, MrIndex};
use stardust_bench::{f3, full_scale, seed_arg, timed, Table};
use stardust_core::config::{Config, UpdatePolicy};
use stardust_core::engine::Stardust;
use stardust_core::query::pattern::{self, PatternQuery};
use stardust_core::StreamId;
use stardust_datagen::host_load_fleet;

const W: usize = 64;
const LEVELS: usize = 5; // windows 64..1024
const N_HISTORY: usize = 1024;
const M_STREAMS: usize = 25;
const C: usize = 64;
const F: usize = 2;

fn main() {
    let seed = seed_arg();
    let arrivals = 3000;
    let n_queries = if full_scale() { 100 } else { 40 };
    println!(
        "# Fig 5: pattern-query precision, Host Load substitute (M={M_STREAMS}, N={N_HISTORY}, W={W}, c={C}, f={F}, {n_queries} queries/radius, seed {seed})"
    );
    let fleet = host_load_fleet(seed, M_STREAMS, arrivals);
    let r_max = fleet.iter().flat_map(|s| s.iter().copied()).fold(1.0f64, f64::max);

    // Build the four indexes.
    let mut online_cfg = Config::batch(W, LEVELS, F, r_max).with_history(N_HISTORY);
    online_cfg.update = UpdatePolicy::Online;
    online_cfg.box_capacity = C;
    let mut online = Stardust::new(online_cfg, M_STREAMS);
    let batch_cfg = Config::batch(W, LEVELS, F, r_max).with_history(N_HISTORY);
    let mut batch = Stardust::new(batch_cfg, M_STREAMS);
    let mut mr = MrIndex::new(W, LEVELS, C, F, N_HISTORY, r_max, M_STREAMS);
    let gm_w = GeneralMatch::max_window_for(192);
    let mut gm = GeneralMatch::new(gm_w, F, r_max, N_HISTORY, M_STREAMS);

    let (_, online_ms) = timed(|| feed(&mut online, &fleet));
    let (_, batch_ms) = timed(|| feed(&mut batch, &fleet));
    let (_, mr_ms) = timed(|| {
        for i in 0..arrivals {
            for (s, stream) in fleet.iter().enumerate() {
                mr.append(s as StreamId, stream[i]);
            }
        }
    });
    let (_, gm_ms) = timed(|| {
        for i in 0..arrivals {
            for (s, stream) in fleet.iter().enumerate() {
                gm.append(s as StreamId, stream[i]);
            }
        }
    });
    println!(
        "# maintenance time (ms): online={online_ms:.0} batch={batch_ms:.0} mr-index={mr_ms:.0} generalmatch={gm_ms:.0} (GeneralMatch window w={gm_w})"
    );

    // Query workload: noisy subsequences of random streams, lengths
    // 192..=1024 in multiples of 64.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF165);
    let radii = [0.005, 0.01, 0.02, 0.04, 0.08];
    let mut table = Table::new(&[
        "radius",
        "avg_selectivity",
        "online",
        "batch",
        "mr-index",
        "generalmatch",
        "cand_onl",
        "cand_bat",
        "cand_mri",
        "cand_gm",
    ]);
    for &radius in &radii {
        let mut precisions = [0.0f64; 4];
        let mut candidates = [0u64; 4];
        let mut counted = [0usize; 4];
        let mut selectivity_sum = 0.0;
        for _ in 0..n_queries {
            let k = rng.random_range(3..=16usize);
            let len = k * W;
            let src = rng.random_range(0..M_STREAMS);
            let end = rng.random_range(arrivals - 600..arrivals);
            let start = end - len;
            // Noise scaled to ~1/3 of the radius in normalized space, so
            // the planted occurrence matches and precision is measurable.
            let noise_amp = radius * r_max;
            let sequence: Vec<f64> = fleet[src][start..end]
                .iter()
                .map(|&v| (v + (rng.random::<f64>() - 0.5) * noise_amp).max(0.0))
                .collect();
            let q = PatternQuery { sequence, radius };
            let truth = pattern::linear_scan_matches(&batch, &q);
            let positions = M_STREAMS * (N_HISTORY - len + 1);
            selectivity_sum += truth.len() as f64 / positions as f64;
            let answers = [
                pattern::query_online(&online, &q).ok(),
                pattern::query_batch(&batch, &q).ok(),
                mr.query(&q).ok(),
                Some(gm.query(&q)),
            ];
            for (i, ans) in answers.iter().enumerate() {
                if let Some(a) = ans {
                    candidates[i] += a.candidates.len() as u64;
                    if !a.candidates.is_empty() {
                        precisions[i] += a.precision();
                        counted[i] += 1;
                    }
                }
            }
        }
        let avg = |i: usize| {
            if counted[i] == 0 {
                "n/a".to_string()
            } else {
                f3(precisions[i] / counted[i] as f64)
            }
        };
        table.row(&[
            format!("{radius}"),
            format!("{:.5}", selectivity_sum / n_queries as f64),
            avg(0),
            avg(1),
            avg(2),
            avg(3),
            (candidates[0] / n_queries as u64).to_string(),
            (candidates[1] / n_queries as u64).to_string(),
            (candidates[2] / n_queries as u64).to_string(),
            (candidates[3] / n_queries as u64).to_string(),
        ]);
    }
    table.print();
}

fn feed(engine: &mut Stardust, fleet: &[Vec<f64>]) {
    let arrivals = fleet[0].len();
    for i in 0..arrivals {
        for (s, stream) in fleet.iter().enumerate() {
            engine.append(s as StreamId, stream[i]);
        }
    }
}
