//! **Figure 4(a)** — burst detection precision on `burst.dat` (substitute).
//!
//! F = SUM, K = 20, m = 50 monitored windows (20, 40, …, 1000), thresholds
//! trained on a 1K prefix as `μ + λσ`, λ swept. Stardust is run with box
//! capacities c ∈ {1, 5, 25, 150} against SWT.
//!
//! Shape to reproduce: Stardust(c=1) has precision 1.0; precision degrades
//! as c grows; Stardust with moderate c stays well above SWT at high λ.
//!
//! Run: `cargo run --release -p stardust-bench --bin fig4a_burst [--full] [--seed N]`

use stardust_baselines::{ExhaustiveMonitor, SwtMonitor};
use stardust_bench::{f1, f3, seed_arg, timed, Table};
use stardust_core::config::Config;
use stardust_core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust_core::stats::train_threshold;
use stardust_core::transform::TransformKind;
use stardust_datagen::burst_dat;

const K: usize = 20;
const M_WINDOWS: usize = 50;
const TRAIN: usize = 1000;

fn specs_for(train: &[f64], lambda: f64) -> Vec<WindowSpec> {
    (1..=M_WINDOWS)
        .map(|k| {
            let w = k * K;
            let threshold =
                train_threshold(train, w, lambda, |win| win.iter().sum()).expect("train data");
            WindowSpec { window: w, threshold }
        })
        .collect()
}

fn main() {
    let seed = seed_arg();
    let (data, bursts) = burst_dat(seed);
    println!(
        "# Fig 4(a): burst detection on burst.dat substitute ({} pts, {} injected bursts, seed {seed})",
        data.len(),
        bursts.len()
    );
    let (train, live) = data.split_at(TRAIN);
    // Levels: windows up to 50·K ⇒ b up to 50 ⇒ bits 0..=5.
    let levels = 6;
    let capacities = [1usize, 5, 25, 150];
    let lambdas = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];

    let mut table = Table::new(&["lambda", "technique", "precision", "true", "raised", "time_ms"]);
    for &lambda in &lambdas {
        let specs = specs_for(train, lambda);
        for &c in &capacities {
            let cfg = Config::online(TransformKind::Sum, K, levels, c).with_history(M_WINDOWS * K);
            let mut mon = AggregateMonitor::new(cfg, &specs);
            let (_, ms) = timed(|| {
                for &x in live {
                    mon.push(x);
                }
            });
            let st = mon.stats();
            table.row(&[
                f1(lambda),
                format!("stardust(c={c})"),
                f3(st.precision()),
                st.true_alarms.to_string(),
                st.candidates.to_string(),
                f1(ms),
            ]);
        }
        let mut swt = SwtMonitor::new(TransformKind::Sum, K, &specs);
        let (_, ms) = timed(|| {
            for &x in live {
                swt.push(x);
            }
        });
        let st = swt.stats();
        table.row(&[
            f1(lambda),
            "swt".to_string(),
            f3(st.precision()),
            st.true_alarms.to_string(),
            st.candidates.to_string(),
            f1(ms),
        ]);
        // The exhaustive monitor the paper benchmarks SWT against.
        let mut exhaustive = ExhaustiveMonitor::new(TransformKind::Sum, &specs);
        let (_, ms) = timed(|| {
            for &x in live {
                exhaustive.push(x);
            }
        });
        let st = exhaustive.stats();
        table.row(&[
            f1(lambda),
            "linear-scan".to_string(),
            f3(st.precision()),
            st.true_alarms.to_string(),
            st.candidates.to_string(),
            f1(ms),
        ]);
    }
    table.print();
}
