//! **Figures 4(b) and 4(c)** — volatility detection on `packet.dat`
//! (substitute).
//!
//! F = SPREAD = MAX − MIN, K = 100, m ∈ {50, 60, 70, 80} windows
//! (100, 200, …, m·100), λ = 0.12 (deliberately low ⇒ many alarms), box
//! capacities c ∈ {1, 10, 100, 1000}, against SWT. 4(b) reports precision,
//! 4(c) the number of alarms raised.
//!
//! Shape to reproduce: Stardust beats SWT in precision at every m for all
//! but degenerate c, and raises markedly fewer alarms.
//!
//! Run: `cargo run --release -p stardust-bench --bin fig4bc_volatility [--full]`
//! (default stream length 36,000; `--full` uses the paper's 360,000).

use stardust_baselines::SwtMonitor;
use stardust_bench::{f1, f3, full_scale, seed_arg, timed, Table};
use stardust_core::config::Config;
use stardust_core::query::aggregate::{AggregateMonitor, WindowSpec};
use stardust_core::stats::train_threshold;
use stardust_core::transform::TransformKind;
use stardust_datagen::{packet_series, PacketParams};

const K: usize = 100;
const LAMBDA: f64 = 0.12;
const TRAIN: usize = 8000;

fn spread(win: &[f64]) -> f64 {
    win.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - win.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let seed = seed_arg();
    let n = if full_scale() { 360_000 } else { 36_000 };
    let data = packet_series(seed, n, &PacketParams::default());
    println!(
        "# Fig 4(b)/(c): volatility detection on packet.dat substitute ({n} pts, seed {seed})"
    );
    let (train, live) = data.split_at(TRAIN);
    let capacities = [1usize, 10, 100, 1000];
    let window_counts = [50usize, 60, 70, 80];
    // Windows up to 80·100 = 8000 ⇒ b up to 80 ⇒ bits 0..=6.
    let levels = 7;

    let mut table = Table::new(&["m", "technique", "precision", "true", "raised", "time_ms"]);
    for &m in &window_counts {
        let specs: Vec<WindowSpec> = (1..=m)
            .map(|k| {
                let w = k * K;
                let threshold = train_threshold(train, w, LAMBDA, spread).expect("train data");
                WindowSpec { window: w, threshold }
            })
            .collect();
        for &c in &capacities {
            let history = (m * K).max(K << (levels - 1));
            let cfg = Config::online(TransformKind::Spread, K, levels, c).with_history(history);
            let mut mon = AggregateMonitor::new(cfg, &specs);
            let (_, ms) = timed(|| {
                for &x in live {
                    mon.push(x);
                }
            });
            let st = mon.stats();
            table.row(&[
                m.to_string(),
                format!("stardust(c={c})"),
                f3(st.precision()),
                st.true_alarms.to_string(),
                st.candidates.to_string(),
                f1(ms),
            ]);
        }
        let mut swt = SwtMonitor::new(TransformKind::Spread, K, &specs);
        let (_, ms) = timed(|| {
            for &x in live {
                swt.push(x);
            }
        });
        let st = swt.stats();
        table.row(&[
            m.to_string(),
            "swt".to_string(),
            f3(st.precision()),
            st.true_alarms.to_string(),
            st.candidates.to_string(),
            f1(ms),
        ]);
    }
    table.print();
}
