//! **Equations 6–7 ablation** — effective monitoring ratio and false-alarm
//! rate: analytical model vs measurement.
//!
//! §5.1 argues that monitoring a window `b·W` through Stardust's binary
//! decomposition with box capacity `c` is equivalent to monitoring through
//! a window inflated by `T′ = 1 + log₂(b)(c−1)/(b·W)` (Eq. 7), whereas SWT
//! uses a covering window inflated by `T ∈ [1, 2)`; under the normalized
//! deviation model of Eq. 5 the false-alarm rate of a ratio-`T` monitor is
//! `1 − Φ((1 + Φ⁻¹(1−p))/T − 1)` (Eq. 6). This binary prints the paper's
//! worked example (c = W = 64, b = 12 ⇒ T′ ≈ 1.2987 vs T = 1.3333), the
//! analytic false-alarm-rate table, and a measured comparison on white
//! noise.
//!
//! Run: `cargo run --release -p stardust-bench --bin eq7_analysis`

use rand::prelude::*;
use rand::rngs::StdRng;
use stardust_baselines::SwtMonitor;
use stardust_bench::{f3, seed_arg, Table};
use stardust_core::config::Config;
use stardust_core::query::aggregate::{analysis, AggregateMonitor, WindowSpec};
use stardust_core::transform::TransformKind;
use stardust_datagen::sampler::normal_with;

fn main() {
    let seed = seed_arg();
    println!("# Eq. 7: effective monitoring ratios (W = 64)");
    let mut t1 = Table::new(&["b", "c", "stardust_T'", "swt_T"]);
    for &b in &[2u64, 4, 8, 12, 16, 32, 50] {
        for &c in &[1usize, 16, 64, 150] {
            t1.row(&[
                b.to_string(),
                c.to_string(),
                format!("{:.4}", analysis::stardust_t_prime(b, c, 64)),
                format!("{:.4}", analysis::swt_t(b as usize * 64, 64)),
            ]);
        }
    }
    t1.print();

    println!("\n# Eq. 6: analytic false-alarm rate vs monitoring ratio (p = tail prob.)");
    let mut t2 = Table::new(&["T", "p=0.001", "p=0.01", "p=0.05"]);
    for &t in &[1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 2.0] {
        t2.row(&[
            format!("{t:.2}"),
            format!("{:.4}", analysis::false_alarm_rate(t, 0.001)),
            format!("{:.4}", analysis::false_alarm_rate(t, 0.01)),
            format!("{:.4}", analysis::false_alarm_rate(t, 0.05)),
        ]);
    }
    t2.print();

    // Measured: Gaussian noise, SUM over w = b·W; threshold set for tail
    // probability p. Compare measured false-alarm rates of Stardust(c) and
    // SWT to the Eq. 6 predictions.
    println!("\n# Measured false-alarm rates on Gaussian noise (W=16, w=12·16=192, p=0.01)");
    let w0 = 16usize;
    let b = 12u64;
    let w = (b as usize) * w0;
    let p = 0.01;
    let n = 400_000usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // SUM of w iid N(μ0, σ0): mean w·μ0, std √w·σ0; τ for tail p.
    let (mu0, sigma0) = (10.0, 2.0);
    let mu_sum = w as f64 * mu0;
    let sd_sum = (w as f64).sqrt() * sigma0;
    let tau = mu_sum + stardust_core::stats::phi_inv(1.0 - p) * sd_sum;
    let data: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, mu0, sigma0)).collect();
    let spec = WindowSpec { window: w, threshold: tau };

    // §5.1's operative claim: the false-alarm rate is monotone in the
    // effective monitoring ratio, with T′ = 1 (c = 1) exactly alarm-free.
    // (Eq. 5's unit-normal relative-deviation model is an idealization;
    // mean-dominated sums deviate from its absolute predictions, so the
    // measured column is compared against the ratio ordering.)
    let mut t3 = Table::new(&["technique", "T_effective", "raised", "true", "measured_FAR"]);
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for &c in &[1usize, 4, 16, 64] {
        let cfg = Config::online(TransformKind::Sum, w0, 5, c).with_history(w.max(16 << 4));
        let mut mon = AggregateMonitor::new(cfg, &[spec]);
        for &x in &data {
            mon.push(x);
        }
        let st = mon.stats();
        let positions = (n - w + 1) as f64;
        let measured = (st.candidates - st.true_alarms) as f64 / positions;
        let t_eff = analysis::stardust_t_prime(b, c, w0);
        rows.push((t_eff, measured));
        t3.row(&[
            format!("stardust(c={c})"),
            format!("{t_eff:.4}"),
            st.candidates.to_string(),
            st.true_alarms.to_string(),
            format!("{measured:.5}"),
        ]);
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let monotone = rows.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9);
    let mut swt = SwtMonitor::new(TransformKind::Sum, w0, &[spec]);
    for &x in &data {
        swt.push(x);
    }
    let st = swt.stats();
    let positions = (n - w + 1) as f64;
    let measured = (st.candidates - st.true_alarms) as f64 / positions;
    let t_eff = analysis::swt_t(w, w0);
    t3.row(&[
        "swt".to_string(),
        format!("{t_eff:.4}"),
        st.candidates.to_string(),
        st.true_alarms.to_string(),
        format!("{measured:.5}"),
    ]);
    t3.print();
    println!("# measured FAR monotone in T' across Stardust capacities: {monotone}");
    println!(
        "# (paper's worked example: T' = {} vs SWT T = {})",
        f3(analysis::stardust_t_prime(12, 64, 64)),
        f3(analysis::swt_t(768, 64))
    );
}
