//! Load driver for `stardust serve`: sustained concurrent clients ×
//! append throughput × tail latency, with a zero-loss/zero-duplication
//! event audit in self-hosted mode.
//!
//! ```text
//! load_driver [--quick] [--clients N] [--values N] [--batch N]
//!             [--pipeline N] [--shards N] [--queue N] [--seed N]
//!             [--addr HOST:PORT --token TOK]   # target a live server
//! ```
//!
//! Default is self-hosted: an in-process server on `127.0.0.1:0`, then
//! a bit-identical event-set audit against a direct runtime run.
//! Exits non-zero if the audit fails. `--quick` is the CI profile.

use stardust_bench::server_load::{run_remote, run_self_hosted, LoadConfig};
use stardust_bench::Table;

fn arg_val(args: &[String], key: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == key).map(|w| w[1].clone())
}

fn parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    arg_val(args, key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut cfg = LoadConfig::default();
    if quick {
        cfg.values_per_client = 1_024;
    }
    cfg.clients = parse(&args, "--clients", cfg.clients);
    cfg.values_per_client = parse(&args, "--values", cfg.values_per_client);
    cfg.batch = parse(&args, "--batch", cfg.batch);
    cfg.pipeline = parse(&args, "--pipeline", cfg.pipeline);
    cfg.shards = parse(&args, "--shards", cfg.shards);
    cfg.queue_capacity = parse(&args, "--queue", cfg.queue_capacity);
    cfg.seed = parse(&args, "--seed", cfg.seed);

    let result = match arg_val(&args, "--addr") {
        Some(addr) => {
            let token = arg_val(&args, "--token").unwrap_or_else(|| "bench-token".into());
            eprintln!("driving live server at {addr} ({} clients)…", cfg.clients);
            run_remote(&addr, &token, &cfg)
        }
        None => {
            eprintln!("self-hosted run ({} clients, audited)…", cfg.clients);
            run_self_hosted(&cfg)
        }
    };

    let mut table = Table::new(&[
        "clients",
        "values",
        "elapsed_s",
        "values/s",
        "p50_us",
        "p95_us",
        "p99_us",
        "busy",
        "audit",
    ]);
    table.row(&[
        result.clients.to_string(),
        result.values.to_string(),
        format!("{:.2}", result.elapsed_s),
        format!("{:.0}", result.throughput_values_per_s),
        format!("{:.1}", result.append_p50_ns as f64 / 1e3),
        format!("{:.1}", result.append_p95_ns as f64 / 1e3),
        format!("{:.1}", result.append_p99_ns as f64 / 1e3),
        result.busy_replies.to_string(),
        match result.audit_ok {
            Some(true) => format!("ok ({} events)", result.audit_events),
            Some(false) => "FAILED".into(),
            None => "n/a (remote)".into(),
        },
    ]);
    table.print();

    if result.audit_ok == Some(false) {
        eprintln!("event-set audit FAILED: socket ingest lost or duplicated events");
        std::process::exit(1);
    }
}
