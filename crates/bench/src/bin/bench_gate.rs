//! **Benchmark regression gate** — compares a freshly emitted
//! `stardust-bench/v1` report (`stardust serve-bench --emit-bench ...`)
//! against a committed baseline and fails the build when a headline
//! metric regresses beyond the tolerance.
//!
//! Gated metrics:
//!
//! * `ingest.throughput_values_per_s` — higher is better; a regression
//!   is a candidate below `baseline × (1 − tolerance)`.
//! * `ingest.durable_throughput_values_per_s` — higher is better, gated
//!   with `--tolerance`: the same workload through the on-disk WAL under
//!   `SyncPolicy::Always`, where group commit coalesces each drained run
//!   of batches into one write + one fsync. This is the number the
//!   group-commit work is accountable to.
//! * `query.p50_ns` — lower is better; a regression is a candidate
//!   above `baseline × (1 + tolerance)`.
//! * `index.insert_ns`, `index.query_ns`, `maintenance.rebuild_bulk_ns`
//!   — lower is better, gated with the (wider) `--micro-tolerance`:
//!   these are single-process median-of-5 wall timings, noisier than the
//!   drain-barrier ingest clock, so they get their own allowance.
//! * `persistence.wal_append_ns`, `persistence.recovery_ns` — lower is
//!   better, gated with `--micro-tolerance`: the per-append cost of the
//!   durable WAL path (`SyncPolicy::EveryN(64)`) and the wall time to
//!   reopen and replay the directory after a crash.
//! * `server.throughput_values_per_s` — higher is better, gated with
//!   `--tolerance`: sustained socket-level append throughput across the
//!   self-hosted client fleet.
//! * `server.append_p50_ns` — lower is better, gated with
//!   `--micro-tolerance`: the median append round trip over loopback
//!   TCP (scheduler- and loopback-noise makes it wobble like the other
//!   micro-timings).
//! * `cross_corr.prune_precision` — higher is better, gated with
//!   `--micro-tolerance`: how selective the cross-shard sketch prune is
//!   (confirmed / verified candidates) on the deterministic audit
//!   workload.
//! * `cross_corr.prune_recall` and `cross_corr.false_dismissals` —
//!   correctness, not performance: recall must be exactly 1 and
//!   dismissals exactly 0 in the *candidate*, no tolerance. A sketch
//!   bound that dismisses a true pair is a bug, never a regression to
//!   wave through.
//! * `rebalance.recovery_ratio` — candidate-only floor of 1.2: the
//!   hot-shard load-relief factor of an online split under live ingest
//!   (the hot worker's share of appends before the split over its share
//!   after, derived from exact per-shard counters, so it is
//!   deterministic on a noisy CI core). At least one migration must
//!   have run. Baselines predating the section are accepted; a
//!   candidate without it fails — the bench silently dropped a phase.
//!
//! Everything else in the report (the embedded metrics registry, p95,
//! event counts, `maintenance.rebuild_replay_ns`/`rebuild_speedup`,
//! `ingest.group_size_p50`/`ingest.wal_group_writes`,
//! `cross_corr.query_p50_ns`) is informational: those values shift with
//! machine load and workload shape, so only the headline numbers are
//! enforced.
//!
//! Run: `cargo run --release -p stardust-bench --bin bench_gate -- \
//!   results/baseline.json BENCH_5.json [--tolerance 0.20] [--micro-tolerance 0.35]`
//!
//! Exit status: 0 when within tolerance, 1 on regression, 2 on usage or
//! schema errors. Std-only; parses with the vendored telemetry JSON
//! reader, so the gate works in the same offline container as the build.

use std::process::ExitCode;

use stardust_telemetry::json::{self, Value};

/// Default allowed fractional slowdown before the gate fails.
const DEFAULT_TOLERANCE: f64 = 0.20;
/// Default allowance for the index/maintenance micro-timings (ns-scale
/// `Instant` medians wobble more than the ingest clock).
const DEFAULT_MICRO_TOLERANCE: f64 = 0.35;

struct Report {
    throughput: f64,
    durable_throughput: f64,
    group_size_p50: f64,
    wal_group_writes: f64,
    query_p50_ns: f64,
    index_insert_ns: f64,
    index_query_ns: f64,
    rebuild_bulk_ns: f64,
    rebuild_replay_ns: f64,
    wal_append_ns: f64,
    recovery_ns: f64,
    server_throughput: f64,
    server_p50_ns: f64,
    cross_precision: f64,
    cross_recall: f64,
    cross_false_dismissals: f64,
    /// `None` on reports emitted before the elastic-rebalancing phase.
    rebalance_recovery_ratio: Option<f64>,
    rebalance_migrations: Option<f64>,
    rebalance_migration_ms_p50: Option<f64>,
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("'{path}': {e}"))?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "stardust-bench/v1" {
        return Err(format!("'{path}': expected schema stardust-bench/v1, found '{schema}'"));
    }
    let num = |section: &str, field: &str| -> Result<f64, String> {
        doc.get(section)
            .and_then(|s| s.get(field))
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("'{path}': missing number {section}.{field}"))
    };
    let opt = |section: &str, field: &str| {
        doc.get(section).and_then(|s| s.get(field)).and_then(Value::as_f64)
    };
    Ok(Report {
        throughput: num("ingest", "throughput_values_per_s")?,
        durable_throughput: num("ingest", "durable_throughput_values_per_s")?,
        group_size_p50: num("ingest", "group_size_p50")?,
        wal_group_writes: num("ingest", "wal_group_writes")?,
        query_p50_ns: num("query", "p50_ns")?,
        index_insert_ns: num("index", "insert_ns")?,
        index_query_ns: num("index", "query_ns")?,
        rebuild_bulk_ns: num("maintenance", "rebuild_bulk_ns")?,
        rebuild_replay_ns: num("maintenance", "rebuild_replay_ns")?,
        wal_append_ns: num("persistence", "wal_append_ns")?,
        recovery_ns: num("persistence", "recovery_ns")?,
        server_throughput: num("server", "throughput_values_per_s")?,
        server_p50_ns: num("server", "append_p50_ns")?,
        cross_precision: num("cross_corr", "prune_precision")?,
        cross_recall: num("cross_corr", "prune_recall")?,
        cross_false_dismissals: num("cross_corr", "false_dismissals")?,
        rebalance_recovery_ratio: opt("rebalance", "recovery_ratio"),
        rebalance_migrations: opt("rebalance", "migrations"),
        rebalance_migration_ms_p50: opt("rebalance", "migration_ms_p50"),
    })
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut micro_tolerance = DEFAULT_MICRO_TOLERANCE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--tolerance needs a value")?;
                tolerance = v.parse().map_err(|_| format!("--tolerance: cannot parse '{v}'"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
                }
            }
            "--micro-tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--micro-tolerance needs a value")?;
                micro_tolerance =
                    v.parse().map_err(|_| format!("--micro-tolerance: cannot parse '{v}'"))?;
                if !(0.0..1.0).contains(&micro_tolerance) {
                    return Err(format!(
                        "--micro-tolerance must be in [0, 1), got {micro_tolerance}"
                    ));
                }
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err("usage: bench_gate BASELINE.json CANDIDATE.json \
                    [--tolerance 0.20] [--micro-tolerance 0.35]"
            .into());
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;

    let mut ok = true;
    let mut check = |name: &str, base: f64, cand: f64, higher_is_better: bool, tol: f64| {
        let (limit, regressed) = if higher_is_better {
            let limit = base * (1.0 - tol);
            (limit, cand < limit)
        } else {
            let limit = base * (1.0 + tol);
            (limit, cand > limit)
        };
        let change = if base > 0.0 { (cand / base - 1.0) * 100.0 } else { 0.0 };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{verdict:>9}  {name}: baseline {base:.0}, candidate {cand:.0} ({change:+.1}%), \
             limit {limit:.0}"
        );
        ok &= !regressed;
    };
    check(
        "ingest throughput (values/s)",
        baseline.throughput,
        candidate.throughput,
        true,
        tolerance,
    );
    check(
        "durable ingest, Always (values/s)",
        baseline.durable_throughput,
        candidate.durable_throughput,
        true,
        tolerance,
    );
    check("query p50 (ns)", baseline.query_p50_ns, candidate.query_p50_ns, false, tolerance);
    check(
        "index insert (ns)",
        baseline.index_insert_ns,
        candidate.index_insert_ns,
        false,
        micro_tolerance,
    );
    check(
        "index query (ns)",
        baseline.index_query_ns,
        candidate.index_query_ns,
        false,
        micro_tolerance,
    );
    check(
        "rebuild via STR bulk (ns)",
        baseline.rebuild_bulk_ns,
        candidate.rebuild_bulk_ns,
        false,
        micro_tolerance,
    );
    check(
        "WAL append (ns/append)",
        baseline.wal_append_ns,
        candidate.wal_append_ns,
        false,
        micro_tolerance,
    );
    check(
        "disk recovery (ns)",
        baseline.recovery_ns,
        candidate.recovery_ns,
        false,
        micro_tolerance,
    );
    check(
        "server throughput (values/s)",
        baseline.server_throughput,
        candidate.server_throughput,
        true,
        tolerance,
    );
    check(
        "server append p50 (ns)",
        baseline.server_p50_ns,
        candidate.server_p50_ns,
        false,
        micro_tolerance,
    );
    check(
        "cross-corr prune precision",
        baseline.cross_precision,
        candidate.cross_precision,
        true,
        micro_tolerance,
    );
    // Correctness, not performance: no tolerance, candidate only.
    let recall_ok = candidate.cross_recall == 1.0 && candidate.cross_false_dismissals == 0.0;
    println!(
        "{:>9}  cross-corr recall: candidate {} ({} false dismissal(s)), required exactly 1 (0)",
        if recall_ok { "ok" } else { "REGRESSED" },
        candidate.cross_recall,
        candidate.cross_false_dismissals,
    );
    ok &= recall_ok;
    // Elastic rebalancing: candidate-only floor, like the recall check.
    // An online split must relieve the hot shard by at least 1.2x and
    // must actually have migrated groups; a candidate without the
    // section means the bench silently dropped the phase.
    match (candidate.rebalance_recovery_ratio, candidate.rebalance_migrations) {
        (Some(ratio), Some(migrations)) => {
            let rebalance_ok = ratio >= 1.2 && migrations >= 1.0;
            println!(
                "{:>9}  rebalance hot-shard relief: candidate {ratio:.2}x over \
                 {migrations:.0} migration(s), required >= 1.20x and >= 1",
                if rebalance_ok { "ok" } else { "REGRESSED" },
            );
            ok &= rebalance_ok;
            let base_ms = match baseline.rebalance_migration_ms_p50 {
                Some(ms) => format!("{ms:.0}ms"),
                None => "n/a".into(),
            };
            println!(
                "     info  migration p50: candidate {:.0}ms, baseline {base_ms}",
                candidate.rebalance_migration_ms_p50.unwrap_or(0.0),
            );
        }
        _ => {
            println!("REGRESSED  rebalance: candidate report has no rebalance section");
            ok = false;
        }
    }
    let speedup = |r: &Report| {
        if r.rebuild_bulk_ns > 0.0 {
            r.rebuild_replay_ns / r.rebuild_bulk_ns
        } else {
            0.0
        }
    };
    println!(
        "     info  rebuild speedup (replay/bulk): baseline {:.2}x, candidate {:.2}x",
        speedup(&baseline),
        speedup(&candidate)
    );
    println!(
        "     info  commit groups: p50 {:.0} batch(es)/group over {:.0} coalesced write(s) \
         (baseline p50 {:.0} over {:.0})",
        candidate.group_size_p50,
        candidate.wal_group_writes,
        baseline.group_size_p50,
        baseline.wal_group_writes,
    );
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench gate FAILED: a headline metric regressed beyond tolerance");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::from(2)
        }
    }
}
