//! Shared harness utilities for the experiment binaries that regenerate
//! the paper's tables and figures.
//!
//! Each binary prints a TSV-style table to stdout. By default the
//! workloads are scaled down so the whole suite runs in minutes on a
//! laptop; pass `--full` for the paper-scale parameters (see
//! EXPERIMENTS.md for both sets).

use std::time::Instant;

pub mod server_load;

/// `true` if `--full` (paper-scale parameters) was passed.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Parses `--seed <n>` (default 42) for reproducible workloads.
pub fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == "--seed").and_then(|w| w[1].parse().ok()).unwrap_or(42)
}

/// Times a closure, returning (result, elapsed milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// A simple aligned table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("   2"));
    }

    #[test]
    fn timed_returns_value() {
        let (v, ms) = timed(|| 7);
        assert_eq!(v, 7);
        assert!(ms >= 0.0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
