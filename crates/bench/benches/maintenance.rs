#![allow(missing_docs)]
//! Per-item maintenance cost of the summarization schemes — the
//! time-complexity claims of §4 / Theorem 4.3.
//!
//! Compares, at identical configurations:
//! * Stardust **incremental online** (Θ(f) per level per item),
//! * Stardust **batch** (amortized Θ(f) per level per W items),
//! * **direct** recomputation (MR-Index style, Θ(W·2^j) per level), and
//! * the SWAT update schedule.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use stardust_core::config::{ComputeMode, Config, UpdatePolicy};
use stardust_core::engine::Stardust;
use stardust_core::transform::TransformKind;
use stardust_core::StreamSummary;
use stardust_datagen::random_walk;
use stardust_index::{bulk_load, Params, RStarTree, Rect};

const N_ITEMS: usize = 4096;

fn feed(summary: &mut StreamSummary, data: &[f64]) {
    for &x in data {
        summary.push_quiet(x);
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let data = random_walk(7, N_ITEMS);
    let mut group = c.benchmark_group("maintenance");
    group.throughput(Throughput::Elements(N_ITEMS as u64));

    let base = Config::batch(64, 5, 4, 200.0).with_history(2048);

    let mut online = base.clone();
    online.update = UpdatePolicy::Online;
    online.box_capacity = 25;
    group.bench_function("incremental_online_c25", |b| {
        b.iter_batched(
            || StreamSummary::new(online.clone()),
            |mut s| feed(&mut s, &data),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("incremental_batch", |b| {
        b.iter_batched(
            || StreamSummary::new(base.clone()),
            |mut s| feed(&mut s, &data),
            BatchSize::SmallInput,
        )
    });

    let mut direct = online.clone();
    direct.compute = ComputeMode::Direct;
    group.bench_function("direct_mrindex_c25", |b| {
        b.iter_batched(
            || StreamSummary::new(direct.clone()),
            |mut s| feed(&mut s, &data),
            BatchSize::SmallInput,
        )
    });

    let mut swat = base.clone();
    swat.update = UpdatePolicy::Swat;
    group.bench_function("incremental_swat", |b| {
        b.iter_batched(
            || StreamSummary::new(swat.clone()),
            |mut s| feed(&mut s, &data),
            BatchSize::SmallInput,
        )
    });

    // Aggregate transforms are cheaper still (no per-level vectors).
    let sum_cfg = Config::online(TransformKind::Sum, 64, 5, 25).with_history(2048);
    group.bench_function("incremental_online_sum", |b| {
        b.iter_batched(
            || StreamSummary::new(sum_cfg.clone()),
            |mut s| feed(&mut s, &data),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Index-rebuild cost on the crash-recovery path: one bottom-up STR bulk
/// build versus replaying every sealed MBR through incremental insertion
/// (what `Stardust::restore` did before the arena/STR rewrite), plus the
/// whole-engine `restore` for context.
fn bench_rebuild(c: &mut Criterion) {
    // Harvest a realistic feature population: a DWT engine over several
    // streams, long enough history that each level retains many MBRs.
    const STREAMS: usize = 8;
    const VALUES: usize = 4096;
    let cfg = Config::batch(8, 3, 8, 200.0).with_history(4096);
    let mut engine = Stardust::new(cfg, STREAMS);
    for (s, walk) in (0..STREAMS).map(|s| (s, random_walk(s as u64 + 11, VALUES))) {
        for v in walk {
            engine.append(s as u32, v);
        }
    }
    let dims = engine.tree(0).dims();
    let items: Vec<(Rect, u64)> = (0..3)
        .flat_map(|level| {
            engine
                .tree(level)
                .iter()
                .enumerate()
                .map(move |(i, (r, _))| (r.clone(), (level * VALUES + i) as u64))
        })
        .collect();
    let snapshot = engine.snapshot();

    let mut group = c.benchmark_group("maintenance");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("rebuild_bulk_str", |b| {
        b.iter_batched(
            || items.clone(),
            |items| bulk_load(dims, Params::default(), items),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rebuild_incremental_replay", |b| {
        b.iter_batched(
            || items.clone(),
            |items| {
                let mut tree = RStarTree::with_params(dims, Params::default());
                for (r, v) in items {
                    tree.insert(r, v);
                }
                tree
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("engine_restore", |b| {
        b.iter(|| Stardust::restore(&snapshot).expect("self-written snapshot"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_maintenance, bench_rebuild
}
criterion_main!(benches);
