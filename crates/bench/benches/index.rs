#![allow(missing_docs)]
//! R\*-tree microbenchmarks: insert, range query, delete, bulk load.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use stardust_index::{bulk_load, Params, RStarTree, Rect};

fn splitmix(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn random_rects(n: usize, dims: usize, seed: u64) -> Vec<(Rect, u32)> {
    let mut s = seed;
    (0..n)
        .map(|i| {
            let lo: Vec<f64> = (0..dims).map(|_| splitmix(&mut s) * 100.0).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + splitmix(&mut s) * 2.0).collect();
            (Rect::new(lo, hi), i as u32)
        })
        .collect()
}

fn bench_index(c: &mut Criterion) {
    for dims in [2usize, 8] {
        let items = random_rects(2000, dims, 99);
        let mut group = c.benchmark_group(format!("rstar_{dims}d"));
        group.throughput(Throughput::Elements(items.len() as u64));

        group.bench_function("insert_2000", |b| {
            b.iter_batched(
                || items.clone(),
                |items| {
                    let mut t = RStarTree::with_params(dims, Params::default());
                    for (r, v) in items {
                        t.insert(r, v);
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function("bulk_load_2000", |b| {
            b.iter_batched(
                || items.clone(),
                |items| bulk_load(dims, Params::default(), items),
                BatchSize::SmallInput,
            )
        });

        let mut tree = RStarTree::with_params(dims, Params::default());
        for (r, v) in items.clone() {
            tree.insert(r, v);
        }
        let queries = random_rects(100, dims, 123);
        group.bench_function("range_query_100", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (q, _) in &queries {
                    tree.search_intersecting(q, |_, _| hits += 1);
                }
                hits
            })
        });

        group.bench_function("point_radius_query_100", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (q, _) in &queries {
                    tree.search_within(q.lo(), 5.0, |_, _| hits += 1);
                }
                hits
            })
        });

        // Frequent-update optimization (Lee et al. [12]): small-drift
        // updates in place vs. the delete+insert fallback.
        group.bench_function("update_small_drift", |b| {
            b.iter_batched(
                || {
                    let mut t = RStarTree::with_params(dims, Params::default());
                    for (r, v) in items.clone() {
                        t.insert(r, v);
                    }
                    t
                },
                |mut t| {
                    for (r, v) in &items {
                        let moved = Rect::new(
                            r.lo().iter().map(|x| x + 0.01).collect(),
                            r.hi().iter().map(|x| x + 0.01).collect(),
                        );
                        t.update(r, v, moved);
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function("update_via_remove_insert", |b| {
            b.iter_batched(
                || {
                    let mut t = RStarTree::with_params(dims, Params::default());
                    for (r, v) in items.clone() {
                        t.insert(r, v);
                    }
                    t
                },
                |mut t| {
                    for (r, v) in &items {
                        let moved = Rect::new(
                            r.lo().iter().map(|x| x + 0.01).collect(),
                            r.hi().iter().map(|x| x + 0.01).collect(),
                        );
                        t.remove(r, v);
                        t.insert(moved, *v);
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function("remove_half", |b| {
            b.iter_batched(
                || {
                    let mut t = RStarTree::with_params(dims, Params::default());
                    for (r, v) in items.clone() {
                        t.insert(r, v);
                    }
                    t
                },
                |mut t| {
                    for (r, v) in items.iter().step_by(2) {
                        t.remove(r, v);
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_index
}
criterion_main!(benches);
