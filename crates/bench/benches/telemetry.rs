#![allow(missing_docs)]
//! Telemetry overhead A/B: the same ingest workload with (a) no registry
//! attached, (b) a disabled registry attached, and (c) a live registry
//! attached.
//!
//! The acceptance bar for the observability layer: variant (b) must be
//! indistinguishable from (a) — a detached handle is one branch on a
//! `None` — and variant (c) must stay within a few percent (the issue
//! budget is ≤5% on ingest).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_datagen::random_walk_streams;
use stardust_runtime::{AggregateSpec, CorrelationSpec, MonitorSpec};
use stardust_telemetry::Registry;

const W: usize = 16;
const LEVELS: usize = 3;
const M: usize = 16;
const N: usize = 2048;

fn workload() -> (Vec<Vec<f64>>, MonitorSpec) {
    let streams = random_walk_streams(41, M, N);
    let r_max = streams.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));
    let spec = MonitorSpec::new(W, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window: 2 * W, threshold: r_max * 2.0 * W as f64 }],
            box_capacity: 4,
        })
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 0.8 });
    (streams, spec)
}

fn bench_telemetry(c: &mut Criterion) {
    let (streams, spec) = workload();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements((M * N) as u64));

    let ingest = |mut monitor: stardust_core::unified::UnifiedMonitor| {
        let mut events = 0usize;
        for t in 0..N {
            for (s, x) in streams.iter().enumerate() {
                events += monitor.append(s as StreamId, x[t]).len();
            }
        }
        events
    };

    group.bench_function("ingest_no_telemetry", |b| {
        b.iter_batched(|| spec.build(M).unwrap().unwrap(), ingest, BatchSize::SmallInput)
    });

    group.bench_function("ingest_disabled_registry", |b| {
        b.iter_batched(
            || {
                let mut monitor = spec.build(M).unwrap().unwrap();
                monitor.attach_telemetry(&Registry::disabled());
                monitor
            },
            ingest,
            BatchSize::SmallInput,
        )
    });

    group.bench_function("ingest_enabled_registry", |b| {
        b.iter_batched(
            || {
                let mut monitor = spec.build(M).unwrap().unwrap();
                monitor.attach_telemetry(&Registry::new());
                monitor
            },
            ingest,
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
