#![allow(missing_docs)]
//! Transform microbenchmarks: direct Haar vs the incremental merges of
//! Lemmas 4.1 / 4.2, and the sliding DFT.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stardust_core::transform::{MergePrecision, TransformKind};
use stardust_dsp::dft::SlidingDft;
use stardust_dsp::haar;
use stardust_dsp::mbr_transform::Bounds;

fn bench_transforms(c: &mut Criterion) {
    let window: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.13).sin() * 5.0 + 10.0).collect();

    let mut group = c.benchmark_group("haar");
    for w in [64usize, 256, 1024] {
        group.bench_function(format!("direct_approx_w{w}_f4"), |b| {
            b.iter(|| haar::approx(&window[..w], 4))
        });
    }
    let left = haar::approx(&window[..512], 4);
    let right = haar::approx(&window[512..], 4);
    group.bench_function("incremental_merge_f4", |b| {
        let mut out = [0.0; 4];
        b.iter(|| {
            haar::merge_halves_into(&left, &right, &mut out);
            out
        })
    });
    group.finish();

    let mut group = c.benchmark_group("interval_merge");
    let bl =
        Bounds::new(left.iter().map(|v| v - 0.5).collect(), left.iter().map(|v| v + 0.5).collect());
    let br = Bounds::new(
        right.iter().map(|v| v - 0.5).collect(),
        right.iter().map(|v| v + 0.5).collect(),
    );
    group.bench_function("dwt_fast_f4", |b| {
        b.iter(|| TransformKind::Dwt.merge_bounds(&bl, &br, MergePrecision::Fast))
    });
    group.bench_function("sum", |b| {
        let l = Bounds::new(vec![1.0], vec![2.0]);
        let r = Bounds::new(vec![3.0], vec![4.0]);
        b.iter(|| TransformKind::Sum.merge_bounds(&l, &r, MergePrecision::Fast))
    });
    group.finish();

    let mut group = c.benchmark_group("sliding_dft");
    group.throughput(Throughput::Elements(window.len() as u64));
    for f in [2usize, 8] {
        group.bench_function(format!("push_f{f}"), |b| {
            b.iter(|| {
                let mut dft = SlidingDft::new(32, 8, f);
                let mut emitted = 0;
                for &x in &window {
                    if dft.push(x).is_some() {
                        emitted += 1;
                    }
                }
                emitted
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transforms
}
criterion_main!(benches);
