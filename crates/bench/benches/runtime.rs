#![allow(missing_docs)]
//! Shard-scaling: ingest throughput of the sharded runtime at 1/2/4/8
//! shards against the single-threaded `UnifiedMonitor`, on the paper's
//! §6.3 shape of workload (many streams, correlation enabled — the
//! pair-search cost that dominates at scale is quadratic in the number
//! of co-monitored streams, so partitioning pays even on one core; on
//! multi-core hardware thread parallelism compounds it).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use stardust_core::query::aggregate::WindowSpec;
use stardust_core::stream::StreamId;
use stardust_core::transform::TransformKind;
use stardust_datagen::random_walk_streams;
use stardust_runtime::{
    AggregateSpec, Batch, CorrelationSpec, MonitorSpec, RuntimeConfig, ShardedRuntime,
};

const W: usize = 16;
const LEVELS: usize = 3;
const M: usize = 64;
const N: usize = 512;

fn workload() -> (Vec<Vec<f64>>, MonitorSpec) {
    let streams = random_walk_streams(23, M, N);
    let r_max = streams.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));
    let spec = MonitorSpec::new(W, LEVELS, r_max)
        .with_aggregates(AggregateSpec {
            transform: TransformKind::Sum,
            windows: vec![WindowSpec { window: 2 * W, threshold: r_max * 2.0 * W as f64 }],
            box_capacity: 4,
        })
        .with_correlations(CorrelationSpec { coeffs: 4, radius: 0.8 });
    (streams, spec)
}

/// Row-major batches of 16 rows, as a front end would submit them.
fn batches(streams: &[Vec<f64>]) -> Vec<Batch> {
    streams[0]
        .chunks(16)
        .enumerate()
        .map(|(chunk, rows)| {
            (0..rows.len())
                .flat_map(|i| {
                    let t = chunk * 16 + i;
                    streams.iter().enumerate().map(move |(s, x)| (s as StreamId, x[t]))
                })
                .collect()
        })
        .collect()
}

fn bench_runtime(c: &mut Criterion) {
    let (streams, spec) = workload();
    let batches = batches(&streams);
    let mut group = c.benchmark_group("runtime_ingest");
    group.throughput(Throughput::Elements((M * N) as u64));

    group.bench_function("single_threaded", |b| {
        b.iter(|| {
            let mut monitor = spec.build(M).unwrap().unwrap();
            let mut events = 0usize;
            for t in 0..N {
                for (s, x) in streams.iter().enumerate() {
                    events += monitor.append(s as StreamId, x[t]).len();
                }
            }
            events
        })
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("sharded_{shards}"), |b| {
            b.iter_batched(
                || {
                    ShardedRuntime::launch(
                        &spec,
                        M,
                        RuntimeConfig { shards, queue_capacity: 64, ..RuntimeConfig::default() },
                    )
                    .unwrap()
                },
                |rt| {
                    for batch in &batches {
                        rt.submit_blocking(batch).unwrap();
                    }
                    rt.shutdown().events.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
