#![allow(missing_docs)]
//! Query-latency microbenchmarks: one-time pattern queries (Algorithms 3
//! and 4), continuous trend probes, and a correlation detection round.

use criterion::{criterion_group, criterion_main, Criterion};
use stardust_core::config::{Config, UpdatePolicy};
use stardust_core::engine::Stardust;
use stardust_core::query::pattern::{self, PatternQuery};
use stardust_core::query::trend::TrendMonitor;
use stardust_datagen::random_walk_streams;

const W: usize = 16;
const LEVELS: usize = 5;
const M: usize = 16;
const N_ITEMS: usize = 1500;

fn engines() -> (Stardust, Stardust, Vec<Vec<f64>>) {
    let data = random_walk_streams(11, M, N_ITEMS);
    let r_max = data.iter().flatten().fold(1.0f64, |a, &b| a.max(b.abs()));
    let mut online_cfg = Config::batch(W, LEVELS, 4, r_max).with_history(512);
    online_cfg.update = UpdatePolicy::Online;
    online_cfg.box_capacity = 16;
    let mut online = Stardust::new(online_cfg, M);
    let batch_cfg = Config::batch(W, LEVELS, 4, r_max).with_history(512);
    let mut batch = Stardust::new(batch_cfg, M);
    for i in 0..N_ITEMS {
        for (s, col) in data.iter().enumerate() {
            online.append(s as u32, col[i]);
            batch.append(s as u32, col[i]);
        }
    }
    (online, batch, data)
}

fn bench_queries(c: &mut Criterion) {
    let (online, batch, data) = engines();
    let mut group = c.benchmark_group("pattern_query");
    for len in [48usize, 112, 240] {
        let q = PatternQuery { sequence: data[0][N_ITEMS - len..].to_vec(), radius: 0.02 };
        group.bench_function(format!("online_len{len}"), |b| {
            b.iter(|| pattern::query_online(&online, &q).expect("valid"))
        });
        group.bench_function(format!("batch_len{len}"), |b| {
            b.iter(|| pattern::query_batch(&batch, &q).expect("valid"))
        });
    }
    group.bench_function("nearest_k10", |b| {
        let seq = &data[1][N_ITEMS - 112..];
        b.iter(|| pattern::nearest_online(&online, seq, 10).expect("valid"))
    });
    group.finish();

    // Trend probe: per-arrival cost with a registered pattern database.
    let mut group = c.benchmark_group("trend_probe");
    for n_patterns in [8usize, 64] {
        group.bench_function(format!("arrival_{n_patterns}_patterns"), |b| {
            let mut cfg = Config::batch(W, 4, 4, 200.0).with_history(256);
            cfg.update = UpdatePolicy::Online;
            cfg.box_capacity = 8;
            let mut mon = TrendMonitor::new(cfg, 1);
            for p in 0..n_patterns {
                let pat: Vec<f64> =
                    (0..48).map(|i| 50.0 + ((i + p) as f64 * 0.37).sin() * 10.0).collect();
                mon.register(pat, 0.02).expect("valid pattern");
            }
            let stream = &data[2];
            let mut i = 0usize;
            b.iter(|| {
                let out = mon.append(0, stream[i % N_ITEMS]);
                i += 1;
                out
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_queries
}
criterion_main!(benches);
