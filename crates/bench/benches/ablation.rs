#![allow(missing_docs)]
//! Appendix A ablation: *Online I* (corner enumeration, Θ(2^d·f)) vs
//! *Online II* (δ-split low/high corners, Θ(f)) MBR transforms, for Haar
//! and a filter with negative taps (db2), plus the tightness gap.

use criterion::{criterion_group, criterion_main, Criterion};
use stardust_dsp::mbr_transform::Bounds;
use stardust_dsp::FilterBank;

fn make_bounds(dims: usize) -> Bounds {
    let lo: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.7).sin()).collect();
    let hi: Vec<f64> = lo.iter().enumerate().map(|(i, v)| v + 0.2 + (i % 3) as f64 * 0.1).collect();
    Bounds::new(lo, hi)
}

fn bench_ablation(c: &mut Criterion) {
    for dims in [4usize, 8, 16] {
        let b = make_bounds(dims);
        let haar = FilterBank::haar();
        let db2 = FilterBank::db2();
        let mut group = c.benchmark_group(format!("mbr_transform_d{dims}"));
        group.bench_function("online2_haar", |bch| bch.iter(|| b.analyze_online2(&haar)));
        group.bench_function("online2_db2", |bch| bch.iter(|| b.analyze_online2(&db2)));
        group.bench_function("online1_haar", |bch| bch.iter(|| b.analyze_online1(&haar)));
        group.bench_function("online1_db2", |bch| bch.iter(|| b.analyze_online1(&db2)));
        group.finish();

        // Print the accuracy side of the trade-off once per dimension.
        let tight = b.analyze_online1(&db2);
        let fast = b.analyze_online2(&db2);
        let tw: f64 = tight.widths().iter().sum();
        let fw: f64 = fast.widths().iter().sum();
        println!("# d={dims}: Online II total width / Online I total width = {:.3}", fw / tw);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablation
}
criterion_main!(benches);
